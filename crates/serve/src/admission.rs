//! Cost-based admission control.
//!
//! §VI of the paper notes that the allocator's cost estimate lets a
//! provider *predict* response cost before running a query. The
//! controller turns that into load shedding: a query whose estimated
//! scatter cost ([`ShardedIndex::estimate_cost`], summed over shards)
//! exceeds the budget is either rejected outright or *degraded* — served
//! at the largest threshold that fits the budget, found by binary search
//! over `tau` (cost is monotone in `tau`).

use crate::shard::ShardedIndex;
use std::sync::atomic::{AtomicU64, Ordering};

/// What to do with an over-budget query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum OverBudgetPolicy {
    /// Refuse the query, returning the estimate to the client.
    Reject,
    /// Serve at the largest affordable threshold not below `min_tau`;
    /// reject only if even `min_tau` is over budget.
    Degrade {
        /// Floor for the degraded threshold — results below this radius
        /// are considered too incomplete to be useful.
        min_tau: u32,
    },
}

/// Admission knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdmissionConfig {
    /// Maximum estimated cost (the engines' cost-model units — expected
    /// candidate accesses + verifications) a single query may incur.
    /// `f64::INFINITY` disables admission control.
    pub cost_budget: f64,
    /// Policy for queries over budget.
    pub policy: OverBudgetPolicy,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig { cost_budget: f64::INFINITY, policy: OverBudgetPolicy::Reject }
    }
}

/// Verdict for one query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AdmissionDecision {
    /// Run at the requested threshold.
    Admit {
        /// Estimated cost at the requested threshold.
        estimated_cost: f64,
    },
    /// Run at a reduced threshold.
    Degrade {
        /// The threshold to execute.
        tau: u32,
        /// The threshold the client requested.
        original_tau: u32,
        /// Estimated cost at the degraded threshold.
        estimated_cost: f64,
    },
    /// Do not run.
    Reject {
        /// Estimated cost at the requested threshold.
        estimated_cost: f64,
        /// The configured budget it exceeded.
        budget: f64,
    },
}

/// Stateless decision logic plus decision counters.
pub struct AdmissionController {
    cfg: AdmissionConfig,
    admitted: AtomicU64,
    degraded: AtomicU64,
    rejected: AtomicU64,
}

/// Counter snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Queries admitted at their requested threshold.
    pub admitted: u64,
    /// Queries served at a reduced threshold.
    pub degraded: u64,
    /// Queries refused.
    pub rejected: u64,
}

impl AdmissionController {
    /// Creates a controller with the given knobs.
    pub fn new(cfg: AdmissionConfig) -> Self {
        AdmissionController {
            cfg,
            admitted: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// The configured knobs.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Decides (and counts) what to do with `(query, tau)` against
    /// `index`.
    pub fn evaluate(&self, index: &ShardedIndex, query: &[u64], tau: u32) -> AdmissionDecision {
        let estimated_cost = index.estimate_cost(query, tau);
        if estimated_cost <= self.cfg.cost_budget {
            self.admitted.fetch_add(1, Ordering::Relaxed);
            return AdmissionDecision::Admit { estimated_cost };
        }
        if let OverBudgetPolicy::Degrade { min_tau } = self.cfg.policy {
            if min_tau < tau {
                // Cost is monotone in tau, so binary-search the largest
                // affordable threshold in [min_tau, tau).
                let (mut lo, mut hi) = (min_tau, tau - 1);
                while lo < hi {
                    let mid = lo + (hi - lo).div_ceil(2);
                    if index.estimate_cost(query, mid) <= self.cfg.cost_budget {
                        lo = mid;
                    } else {
                        hi = mid - 1;
                    }
                }
                let degraded_cost = index.estimate_cost(query, lo);
                if degraded_cost <= self.cfg.cost_budget {
                    self.degraded.fetch_add(1, Ordering::Relaxed);
                    return AdmissionDecision::Degrade {
                        tau: lo,
                        original_tau: tau,
                        estimated_cost: degraded_cost,
                    };
                }
            }
        }
        self.rejected.fetch_add(1, Ordering::Relaxed);
        AdmissionDecision::Reject { estimated_cost, budget: self.cfg.cost_budget }
    }

    /// Decides (and counts) whether a mutation priced at
    /// `estimated_cost` fits the budget. Mutations cannot be degraded —
    /// a partial insert has no meaning — so the verdict is admit or
    /// reject regardless of the over-budget policy.
    pub fn evaluate_mutation(&self, estimated_cost: f64) -> AdmissionDecision {
        if estimated_cost <= self.cfg.cost_budget {
            self.admitted.fetch_add(1, Ordering::Relaxed);
            AdmissionDecision::Admit { estimated_cost }
        } else {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            AdmissionDecision::Reject { estimated_cost, budget: self.cfg.cost_budget }
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gph::engine::GphConfig;
    use gph::partition_opt::PartitionStrategy;
    use hamming_core::{BitVector, Dataset};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn fixture() -> (ShardedIndex, Vec<u64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut ds = Dataset::new(64);
        for _ in 0..600 {
            let v = BitVector::from_bits((0..64).map(|_| rng.random_bool(0.4)));
            ds.push(&v).unwrap();
        }
        let mut cfg = GphConfig::new(4, 16);
        cfg.strategy = PartitionStrategy::RandomShuffle { seed: 2 };
        let q = ds.row(0).to_vec();
        (ShardedIndex::build(&ds, 2, &cfg).unwrap(), q)
    }

    #[test]
    fn unlimited_budget_admits_everything() {
        let (index, q) = fixture();
        let ctl = AdmissionController::new(AdmissionConfig::default());
        assert!(matches!(ctl.evaluate(&index, &q, 16), AdmissionDecision::Admit { .. }));
        assert_eq!(ctl.stats(), AdmissionStats { admitted: 1, degraded: 0, rejected: 0 });
    }

    #[test]
    fn zero_budget_rejects() {
        let (index, q) = fixture();
        let ctl = AdmissionController::new(AdmissionConfig {
            cost_budget: 0.0,
            policy: OverBudgetPolicy::Reject,
        });
        // tau=16 on a 600-row index always estimates positive cost.
        match ctl.evaluate(&index, &q, 16) {
            AdmissionDecision::Reject { estimated_cost, budget } => {
                assert!(estimated_cost > 0.0);
                assert_eq!(budget, 0.0);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        assert_eq!(ctl.stats().rejected, 1);
    }

    #[test]
    fn degrade_picks_largest_affordable_tau() {
        let (index, q) = fixture();
        // Pick a budget strictly between the cost at tau=2 and tau=16 so
        // degradation has room to act.
        let lo_cost = index.estimate_cost(&q, 2);
        let hi_cost = index.estimate_cost(&q, 16);
        assert!(hi_cost > lo_cost, "fixture must have cost spread");
        let budget = (lo_cost + hi_cost) / 2.0;
        let ctl = AdmissionController::new(AdmissionConfig {
            cost_budget: budget,
            policy: OverBudgetPolicy::Degrade { min_tau: 0 },
        });
        match ctl.evaluate(&index, &q, 16) {
            AdmissionDecision::Admit { estimated_cost } => {
                // Whole request fit after all (cost curve is flat here).
                assert!(estimated_cost <= budget);
            }
            AdmissionDecision::Degrade { tau, original_tau, estimated_cost } => {
                assert_eq!(original_tau, 16);
                assert!(tau < 16);
                assert!(estimated_cost <= budget);
                // Maximality: the next tau up must exceed the budget.
                assert!(index.estimate_cost(&q, tau + 1) > budget);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mutations_admit_or_reject_never_degrade() {
        let ctl = AdmissionController::new(AdmissionConfig {
            cost_budget: 10.0,
            policy: OverBudgetPolicy::Degrade { min_tau: 0 },
        });
        assert!(matches!(ctl.evaluate_mutation(5.0), AdmissionDecision::Admit { .. }));
        // Even under a Degrade policy, an over-budget mutation rejects.
        assert!(matches!(ctl.evaluate_mutation(50.0), AdmissionDecision::Reject { .. }));
        assert_eq!(ctl.stats(), AdmissionStats { admitted: 1, degraded: 0, rejected: 1 });
    }

    #[test]
    fn degrade_with_unaffordable_floor_rejects() {
        let (index, q) = fixture();
        let ctl = AdmissionController::new(AdmissionConfig {
            cost_budget: 0.0,
            policy: OverBudgetPolicy::Degrade { min_tau: 3 },
        });
        assert!(matches!(ctl.evaluate(&index, &q, 16), AdmissionDecision::Reject { .. }));
    }
}

//! Sharded-snapshot properties: restore is query-identical to the built
//! fleet over any shard count, and corruption of any byte of any file in
//! the snapshot directory is detected as `HammingError::Corrupt`.

use gph::engine::GphConfig;
use gph::partition_opt::PartitionStrategy;
use gph_serve::ShardedIndex;
use hamming_core::{BitVector, Dataset, HammingError};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const DIM: usize = 48;

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("gph_snap_prop_{tag}_{}_{n}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    prop::collection::vec(prop::collection::vec(any::<bool>(), DIM), 1..100).prop_map(|rows| {
        Dataset::from_vectors(DIM, rows.iter().map(|r| BitVector::from_bits(r.iter().copied())))
            .expect("uniform width")
    })
}

fn cfg(seed: u64) -> GphConfig {
    let mut cfg = GphConfig::new(3, 10);
    cfg.strategy = PartitionStrategy::RandomShuffle { seed };
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// snapshot → restore → query equals build → query over 1..=6
    /// shards, for range, top-k, and the admission cost signal.
    #[test]
    fn restored_fleet_is_query_identical(
        ds in dataset_strategy(),
        n_shards in 1usize..=6,
        tau in 0u32..=10,
        k in 1usize..=8,
        qi in any::<prop::sample::Index>(),
        seed in any::<u64>(),
    ) {
        let built = ShardedIndex::build(&ds, n_shards, &cfg(seed)).expect("build");
        let dir = fresh_dir("roundtrip");
        built.snapshot(&dir).expect("snapshot");
        let restored = ShardedIndex::restore(&dir).expect("restore");
        std::fs::remove_dir_all(&dir).ok();
        let q = ds.row(qi.index(ds.len())).to_vec();
        prop_assert_eq!(restored.search(&q, tau), built.search(&q, tau));
        prop_assert_eq!(restored.search_topk(&q, k), built.search_topk(&q, k));
        prop_assert_eq!(restored.estimate_cost(&q, tau), built.estimate_cost(&q, tau));
        prop_assert_eq!(restored.shard_sizes(), built.shard_sizes());
    }

    /// A single corrupted byte in any file of the snapshot directory —
    /// manifest or shard — fails the restore with `Corrupt`.
    #[test]
    fn corrupted_snapshot_directory_is_rejected(
        ds in dataset_strategy(),
        n_shards in 1usize..=4,
        seed in any::<u64>(),
        file_pick in any::<prop::sample::Index>(),
        offset in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let built = ShardedIndex::build(&ds, n_shards, &cfg(seed)).expect("build");
        let dir = fresh_dir("corrupt");
        built.snapshot(&dir).expect("snapshot");
        let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
            .expect("list")
            .map(|e| e.expect("entry").path())
            .collect();
        files.sort();
        let victim = files[file_pick.index(files.len())].clone();
        let mut bytes = std::fs::read(&victim).expect("read victim");
        let at = offset.index(bytes.len());
        bytes[at] ^= flip;
        std::fs::write(&victim, &bytes).expect("write victim");
        let outcome = ShardedIndex::restore(&dir);
        std::fs::remove_dir_all(&dir).ok();
        match outcome {
            Err(HammingError::Corrupt(_)) => {}
            Err(other) => {
                return Err(TestCaseError::Fail(format!(
                    "flip {flip:#x} at {at} of {victim:?}: unexpected error kind {other}"
                )));
            }
            Ok(_) => {
                return Err(TestCaseError::Fail(format!(
                    "flip {flip:#x} at {at} of {victim:?} went undetected"
                )));
            }
        }
    }
}

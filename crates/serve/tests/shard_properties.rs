//! Shard-merge correctness: scatter-gather over any shard count returns
//! exactly what one engine over the unsharded data returns.

use gph::engine::{Gph, GphConfig};
use gph::partition_opt::PartitionStrategy;
use gph_serve::ShardedIndex;
use hamming_core::{BitVector, Dataset};
use proptest::prelude::*;

const DIM: usize = 48;

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    prop::collection::vec(prop::collection::vec(any::<bool>(), DIM), 1..120).prop_map(|rows| {
        Dataset::from_vectors(DIM, rows.iter().map(|r| BitVector::from_bits(r.iter().copied())))
            .expect("uniform width")
    })
}

fn cfg(seed: u64) -> GphConfig {
    let mut cfg = GphConfig::new(3, 10);
    // RandomShuffle keeps build time trivial; exactness is
    // partitioning-independent so any strategy exercises the merge.
    cfg.strategy = PartitionStrategy::RandomShuffle { seed };
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Range search over 1..=8 shards returns exactly the ID set of a
    /// single index on the same data.
    #[test]
    fn sharded_range_search_is_exact(
        ds in dataset_strategy(),
        n_shards in 1usize..=8,
        tau in 0u32..=10,
        qi in any::<prop::sample::Index>(),
        seed in any::<u64>(),
    ) {
        let single = Gph::build(ds.clone(), &cfg(seed)).expect("build single");
        let sharded = ShardedIndex::build(&ds, n_shards, &cfg(seed)).expect("build sharded");
        let q = ds.row(qi.index(ds.len())).to_vec();
        prop_assert_eq!(sharded.search(&q, tau), single.search(&q, tau));
    }

    /// Top-k over 1..=8 shards returns exactly the (id, distance) pairs
    /// of a single index — same members, same order, same tie-breaks —
    /// at the full escalation radius and at every degraded cap.
    #[test]
    fn sharded_topk_is_exact(
        ds in dataset_strategy(),
        n_shards in 1usize..=8,
        k in 0usize..=24,
        tau_cap in 0u32..=10,
        qi in any::<prop::sample::Index>(),
        seed in any::<u64>(),
    ) {
        let single = Gph::build(ds.clone(), &cfg(seed)).expect("build single");
        let sharded = ShardedIndex::build(&ds, n_shards, &cfg(seed)).expect("build sharded");
        let q = ds.row(qi.index(ds.len())).to_vec();
        prop_assert_eq!(sharded.search_topk(&q, k), single.search_topk(&q, k));
        prop_assert_eq!(
            sharded.search_topk_within(&q, k, tau_cap),
            single.search_topk_within(&q, k, tau_cap)
        );
    }

    /// Perturbed (non-member) queries are exact too, including queries
    /// far from every record.
    #[test]
    fn sharded_search_is_exact_for_foreign_queries(
        ds in dataset_strategy(),
        n_shards in 2usize..=8,
        qbits in prop::collection::vec(any::<bool>(), DIM),
        tau in 0u32..=10,
        seed in any::<u64>(),
    ) {
        let single = Gph::build(ds.clone(), &cfg(seed)).expect("build single");
        let sharded = ShardedIndex::build(&ds, n_shards, &cfg(seed)).expect("build sharded");
        let q = BitVector::from_bits(qbits.iter().copied());
        prop_assert_eq!(sharded.search(q.words(), tau), single.search(q.words(), tau));
        prop_assert_eq!(sharded.search_topk(q.words(), 7), single.search_topk(q.words(), 7));
    }
}

//! Serve-layer mutation correctness: a `ShardedIndex` (and the
//! `QueryService` in front of it) under arbitrary interleaved
//! insert/delete/upsert streams answers every query exactly like a fresh
//! single `Gph` built over the surviving rows — including after a fleet
//! snapshot/restore round-trip.

use gph::engine::{Gph, GphConfig};
use gph::partition_opt::PartitionStrategy;
use gph::segment::SegmentConfig;
use gph_serve::{QueryService, ServiceConfig, ShardedIndex};
use hamming_core::{BitVector, Dataset};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

const DIM: usize = 40;
const ID_UNIVERSE: u32 = 24;

#[derive(Clone, Debug)]
enum Op {
    Upsert(u32, Vec<bool>),
    Delete(u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Weighted choice via a selector (the vendored proptest shim has no
    // prop_oneof!): 0..3 upsert, 3 delete.
    (0u8..4, 0..ID_UNIVERSE, prop::collection::vec(any::<bool>(), DIM)).prop_map(
        |(sel, id, bits)| match sel {
            0..=2 => Op::Upsert(id, bits),
            _ => Op::Delete(id),
        },
    )
}

fn cfg(seed: u64) -> GphConfig {
    let mut cfg = GphConfig::new(3, 8);
    cfg.strategy = PartitionStrategy::RandomShuffle { seed };
    cfg
}

fn words(bits: &[bool]) -> Vec<u64> {
    BitVector::from_bits(bits.iter().copied()).words().to_vec()
}

fn apply(index: &ShardedIndex, model: &mut BTreeMap<u32, Vec<u64>>, op: &Op) {
    match op {
        Op::Upsert(id, bits) => {
            let row = words(bits);
            let replaced = index.upsert(*id, &row).expect("upsert");
            assert_eq!(replaced, model.insert(*id, row).is_some());
        }
        Op::Delete(id) => {
            assert_eq!(index.delete(*id), model.remove(id).is_some());
        }
    }
}

fn assert_equivalent(index: &ShardedIndex, model: &BTreeMap<u32, Vec<u64>>, cfg: &GphConfig) {
    let fresh = if model.is_empty() {
        None
    } else {
        let mut ds = Dataset::new(DIM);
        let mut ids = Vec::with_capacity(model.len());
        for (&id, row) in model {
            ds.push_row(row).expect("model rows are well-formed");
            ids.push(id);
        }
        Some((Gph::build(ds, cfg).expect("build reference"), ids))
    };
    // Member queries (every surviving row) plus one foreign probe.
    let mut queries: Vec<Vec<u64>> = model.values().take(4).cloned().collect();
    queries.push(vec![0u64; hamming_core::words_for(DIM)]);
    for q in &queries {
        for tau in [0u32, 4, 8] {
            let expect: Vec<u32> = match &fresh {
                None => Vec::new(),
                Some((g, ids)) => g.search(q, tau).into_iter().map(|l| ids[l as usize]).collect(),
            };
            assert_eq!(index.search(q, tau), expect, "tau={tau}");
        }
        let expect_topk: Vec<(u32, u32)> = match &fresh {
            None => Vec::new(),
            Some((g, ids)) => {
                g.search_topk(q, 6).into_iter().map(|(l, d)| (ids[l as usize], d)).collect()
            }
        };
        assert_eq!(index.search_topk(q, 6), expect_topk);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Mutations through the sharded fleet keep scatter-gather exact for
    /// 1..=5 shards, including after a snapshot/restore round-trip.
    #[test]
    fn sharded_mutations_stay_exact(
        initial in prop::collection::vec(prop::collection::vec(any::<bool>(), DIM), 0..12),
        ops in prop::collection::vec(op_strategy(), 1..30),
        ops_after in prop::collection::vec(op_strategy(), 0..10),
        n_shards in 1usize..=5,
        seal_rows in 1usize..5,
        seed in any::<u64>(),
    ) {
        let cfg = cfg(seed);
        let seg_cfg = SegmentConfig { seal_rows, max_sealed: 2, ..SegmentConfig::default() };
        let mut ds = Dataset::new(DIM);
        let mut model: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
        for (i, bits) in initial.iter().enumerate() {
            let row = words(bits);
            ds.push_row(&row).expect("initial rows");
            model.insert(i as u32, row);
        }
        let index =
            ShardedIndex::build_with_segments(&ds, n_shards, &cfg, seg_cfg).expect("build");
        for op in &ops {
            apply(&index, &mut model, op);
        }
        assert_equivalent(&index, &model, &cfg);

        // Fleet snapshot with pending tombstones, restore, keep mutating.
        let dir = std::env::temp_dir()
            .join(format!("gph_mutation_props_{}_{seed:x}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        index.snapshot(&dir).expect("snapshot");
        let restored = ShardedIndex::restore(&dir).expect("restore");
        std::fs::remove_dir_all(&dir).ok();
        prop_assert_eq!(restored.len(), index.len());
        assert_equivalent(&restored, &model, &cfg);
        for op in &ops_after {
            apply(&restored, &mut model, op);
        }
        assert_equivalent(&restored, &model, &cfg);
    }

    /// The service front end (cache + admission + worker pool) stays
    /// consistent with the index under interleaved queries and
    /// mutations: every response reflects exactly the live rows at the
    /// time it executes.
    #[test]
    fn service_mutations_keep_responses_fresh(
        initial in prop::collection::vec(prop::collection::vec(any::<bool>(), DIM), 1..10),
        ops in prop::collection::vec(op_strategy(), 1..15),
        seed in any::<u64>(),
    ) {
        let cfg = cfg(seed);
        let mut ds = Dataset::new(DIM);
        let mut model: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
        for (i, bits) in initial.iter().enumerate() {
            let row = words(bits);
            ds.push_row(&row).expect("initial rows");
            model.insert(i as u32, row);
        }
        let index = Arc::new(ShardedIndex::build(&ds, 2, &cfg).expect("build"));
        let service = QueryService::new(
            Arc::clone(&index),
            ServiceConfig { workers: 2, ..ServiceConfig::default() },
        );
        for op in &ops {
            // Query (and cache) before the mutation, mutate through the
            // service, then verify the post-mutation answer is fresh.
            let probe = words(op_row(op, &initial));
            let _ = service.query(&probe, 8);
            match op {
                Op::Upsert(id, bits) => {
                    let row = words(bits);
                    let resp = service.upsert(*id, &row).expect("upsert");
                    let applied =
                        matches!(resp.outcome, gph_serve::MutationOutcome::Applied { .. });
                    prop_assert!(applied);
                    model.insert(*id, row);
                }
                Op::Delete(id) => {
                    let was_live = model.remove(id).is_some();
                    let resp = service.delete(*id);
                    let applied =
                        matches!(resp.outcome, gph_serve::MutationOutcome::Applied { .. });
                    let not_found =
                        matches!(resp.outcome, gph_serve::MutationOutcome::NotFound);
                    let outcome_consistent = if was_live { applied } else { not_found };
                    prop_assert!(outcome_consistent);
                }
            }
            let expect = index.search(&probe, 8);
            let resp = service.query(&probe, 8);
            prop_assert_eq!(resp.ids().expect("range response"), expect.as_slice());
        }
        service.shutdown();
    }
}

/// A probe row related to the op: the upserted row, or (for deletes) the
/// first initial row, so cached answers overlapping the mutation are
/// exercised.
fn op_row<'a>(op: &'a Op, initial: &'a [Vec<bool>]) -> &'a [bool] {
    match op {
        Op::Upsert(_, bits) => bits,
        Op::Delete(_) => &initial[0],
    }
}

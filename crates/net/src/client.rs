//! The blocking client: [`GphClient`] pools TCP connections and mirrors
//! the in-process submit/wait [`gph_serve::Ticket`] API over the wire.
//!
//! Every connection runs a background reader thread that demultiplexes
//! response frames by request id, so any number of requests can be **in
//! flight at once** on one socket (`submit_*` returns a [`NetTicket`];
//! `wait` blocks for that request's response only). The convenience
//! wrappers (`search`, `topk`, `insert`, ...) are submit-then-wait.
//!
//! Errors are typed: a server-side admission rejection arrives as
//! [`NetError::Remote`]`(`[`WireError::Rejected`]`)` with the estimated
//! cost and budget, distinct from transport failures ([`NetError::Io`],
//! [`NetError::Closed`]) and framing corruption
//! ([`NetError::Protocol`]).

use crate::protocol::{
    encode_request, read_frame, FleetManifest, Message, NodeHealth, NodeScrape, Request, Response,
    SearchEntry, WireError, WireMutation,
};
use crate::NetError;
use crossbeam::channel;
use gph_obs::QueryTrace;
use gph_serve::ServiceSnapshotStats;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Client knobs.
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// TCP connections in the pool; requests round-robin across them.
    pub connections: usize,
    /// Disable Nagle's algorithm (recommended: frames are whole
    /// requests, batching them adds pure latency).
    pub nodelay: bool,
    /// Bound on each pooled connection's TCP connect; `None` (the
    /// default) uses the OS default. Scrapers and health probes set
    /// this so an unresponsive host costs a bounded wait.
    pub connect_timeout: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig { connections: 1, nodelay: true, connect_timeout: None }
    }
}

/// A range-search result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RangeResult {
    /// Matching record ids, ascending.
    pub ids: Vec<u32>,
    /// Threshold actually executed.
    pub tau: u32,
    /// Set when admission degraded the query: the threshold asked for.
    pub degraded_from: Option<u32>,
    /// Whether the server answered from its result cache.
    pub from_cache: bool,
}

/// A top-k result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TopKResult {
    /// `(id, distance)` ascending by `(distance, id)`.
    pub hits: Vec<(u32, u32)>,
    /// Set when admission degraded the query: the escalation cap run.
    pub degraded_cap: Option<u32>,
    /// Whether the server answered from its result cache.
    pub from_cache: bool,
}

/// One entry of a batch-search response (rejections and load shedding
/// are in-band here, unlike single searches where they are typed
/// errors).
#[derive(Clone, Debug, PartialEq)]
pub enum BatchEntry {
    /// The search ran.
    Ids(RangeResult),
    /// Admission refused this query.
    Rejected {
        /// Estimated cost at the requested threshold.
        estimated_cost: f64,
        /// Budget it exceeded.
        budget: f64,
    },
    /// The server shed this query under load.
    Overloaded,
}

/// A traced range-search result: the hits plus the query's own
/// per-phase execution trace.
#[derive(Clone, Debug, PartialEq)]
pub struct TracedResult {
    /// The search outcome.
    pub result: RangeResult,
    /// The query's per-phase trace. `None` only if the server elided it
    /// (current servers always attach one to executed searches).
    pub trace: Option<QueryTrace>,
}

/// A metastore's `AggregateMetrics` reply: the fleet-merged exposition
/// plus every node's individual scrape outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FleetMetrics {
    /// Merged Prometheus exposition over the metastore and every fresh
    /// node scrape.
    pub merged: String,
    /// Per-node outcomes; stale nodes carry their scrape error.
    pub nodes: Vec<NodeScrape>,
}

/// The server's `Stats` reply: index shape plus service counters.
#[derive(Clone, Copy, Debug)]
pub struct RemoteStats {
    /// Live rows in the remote index.
    pub rows: u64,
    /// Remote index dimensionality.
    pub dim: u32,
    /// The remote index's maximum supported threshold.
    pub tau_max: u32,
    /// Remote shard count.
    pub shards: u32,
    /// Service + cache + admission counters.
    pub stats: ServiceSnapshotStats,
}

type ReplySender = channel::Sender<Result<Response, NetError>>;

/// State shared between a connection and its reader thread. The reader
/// holds only this (never the [`Conn`] itself), so dropping a client
/// can never make the reader thread try to join itself.
struct ConnState {
    pending: Mutex<HashMap<u64, ReplySender>>,
    broken: AtomicBool,
}

impl ConnState {
    /// Fails every in-flight request and marks the connection dead.
    fn fail_all(&self, why: &str) {
        self.broken.store(true, Ordering::SeqCst);
        let pending: Vec<ReplySender> = self.pending.lock().drain().map(|(_, tx)| tx).collect();
        for tx in pending {
            // Waiters may have dropped their tickets; that's fine.
            let _ = tx.send(Err(if why.is_empty() {
                NetError::Closed
            } else {
                NetError::Protocol(why.to_string())
            }));
        }
    }
}

struct Conn {
    /// Write half; the mutex makes each frame write atomic.
    writer: Mutex<TcpStream>,
    next_id: AtomicU64,
    state: Arc<ConnState>,
    reader: Option<JoinHandle<()>>,
}

impl Conn {
    fn open(addr: &std::net::SocketAddr, cfg: &ClientConfig) -> Result<Conn, NetError> {
        let stream = match cfg.connect_timeout {
            Some(t) => TcpStream::connect_timeout(addr, t)?,
            None => TcpStream::connect(addr)?,
        };
        if cfg.nodelay {
            let _ = stream.set_nodelay(true);
        }
        let read_half = stream.try_clone()?;
        let state = Arc::new(ConnState {
            pending: Mutex::new(HashMap::new()),
            broken: AtomicBool::new(false),
        });
        let reader = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("gph-net-client-reader".into())
                .spawn(move || reader_loop(read_half, &state))
                .expect("spawning the client reader thread")
        };
        Ok(Conn {
            writer: Mutex::new(stream),
            next_id: AtomicU64::new(1),
            state,
            reader: Some(reader),
        })
    }

    fn submit(
        &self,
        req: &Request,
    ) -> Result<channel::Receiver<Result<Response, NetError>>, NetError> {
        if self.state.broken.load(Ordering::SeqCst) {
            return Err(NetError::Closed);
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = channel::bounded(1);
        self.state.pending.lock().insert(id, tx);
        let frame = encode_request(id, req);
        let write_result = {
            let mut stream = self.writer.lock();
            stream.write_all(&frame)
        };
        if let Err(e) = write_result {
            self.state.pending.lock().remove(&id);
            self.state.fail_all("");
            return Err(NetError::Io(e));
        }
        // The reader may have died between the broken check and the
        // pending insert; it will never drain an entry registered after
        // its fail_all, so re-check rather than hand back a ticket that
        // would block forever.
        if self.state.broken.load(Ordering::SeqCst) {
            self.state.pending.lock().remove(&id);
            return Err(NetError::Closed);
        }
        Ok(rx)
    }
}

impl Drop for Conn {
    fn drop(&mut self) {
        let _ = self.writer.lock().shutdown(Shutdown::Both);
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}

fn reader_loop(mut stream: TcpStream, state: &ConnState) {
    loop {
        match read_frame(&mut stream) {
            Ok(Some((id, Message::Response(resp), _))) => {
                let tx = state.pending.lock().remove(&id);
                match (tx, resp) {
                    (Some(tx), resp) => {
                        let _ = tx.send(Ok(resp));
                    }
                    // Servers report connection-level failures (e.g. an
                    // undecodable frame) on the reserved id 0, which
                    // matches no ticket: surface the server's reason to
                    // every waiter instead of a generic unknown-id error.
                    (None, Response::Error(e)) => {
                        state.fail_all(&format!("server closed the connection: {e}"));
                        return;
                    }
                    (None, _) => {
                        state.fail_all(&format!("response for unknown request id {id}"));
                        return;
                    }
                }
            }
            Ok(Some((_, Message::Request(_), _))) => {
                state.fail_all("received a request frame on the client");
                return;
            }
            Ok(None) => {
                state.fail_all("");
                return;
            }
            Err(e) => {
                state.fail_all(&e.to_string());
                return;
            }
        }
    }
}

/// Handle to one in-flight request; [`NetTicket::wait`] blocks for that
/// request's response only, so several tickets pipeline on one
/// connection.
pub struct NetTicket<T> {
    rx: channel::Receiver<Result<Response, NetError>>,
    map: fn(Response) -> Result<T, NetError>,
}

impl<T> NetTicket<T> {
    /// Blocks until the response arrives (or the connection dies).
    pub fn wait(self) -> Result<T, NetError> {
        let resp = self.rx.recv().map_err(|_| NetError::Closed)??;
        (self.map)(resp)
    }

    /// [`NetTicket::wait`] bounded by `timeout`: [`NetError::Timeout`]
    /// if no response lands in time (the request may still complete on
    /// the server — only retry operations that are idempotent).
    pub fn wait_timeout(self, timeout: Duration) -> Result<T, NetError> {
        use crossbeam::channel::RecvTimeoutError;
        let resp = match self.rx.recv_timeout(timeout) {
            Ok(resp) => resp?,
            Err(RecvTimeoutError::Timeout) => return Err(NetError::Timeout),
            Err(RecvTimeoutError::Disconnected) => return Err(NetError::Closed),
        };
        (self.map)(resp)
    }
}

fn unexpected<T>(resp: &Response) -> Result<T, NetError> {
    match resp {
        Response::Error(e) => Err(NetError::Remote(e.clone())),
        other => Err(NetError::Protocol(format!("unexpected response variant: {other:?}"))),
    }
}

fn range_result(entry: SearchEntry) -> Result<RangeResult, NetError> {
    match entry {
        SearchEntry::Ids { ids, tau, degraded_from, from_cache } => {
            Ok(RangeResult { ids, tau, degraded_from, from_cache })
        }
        SearchEntry::Rejected { estimated_cost, budget } => {
            Err(NetError::Remote(WireError::Rejected { estimated_cost, budget }))
        }
        SearchEntry::Overloaded => Err(NetError::Remote(WireError::Overloaded)),
    }
}

fn expect_pong(resp: Response) -> Result<(), NetError> {
    match resp {
        Response::Pong => Ok(()),
        other => unexpected(&other),
    }
}

fn expect_range(resp: Response) -> Result<RangeResult, NetError> {
    match resp {
        Response::Search(entry) => range_result(entry),
        other => unexpected(&other),
    }
}

fn expect_topk(resp: Response) -> Result<TopKResult, NetError> {
    match resp {
        Response::TopK { hits, degraded_cap, from_cache } => {
            Ok(TopKResult { hits, degraded_cap, from_cache })
        }
        other => unexpected(&other),
    }
}

fn expect_batch(resp: Response) -> Result<Vec<BatchEntry>, NetError> {
    match resp {
        Response::Batch(entries) => Ok(entries
            .into_iter()
            .map(|entry| match entry {
                SearchEntry::Ids { ids, tau, degraded_from, from_cache } => {
                    BatchEntry::Ids(RangeResult { ids, tau, degraded_from, from_cache })
                }
                SearchEntry::Rejected { estimated_cost, budget } => {
                    BatchEntry::Rejected { estimated_cost, budget }
                }
                SearchEntry::Overloaded => BatchEntry::Overloaded,
            })
            .collect()),
        other => unexpected(&other),
    }
}

fn expect_mutation(resp: Response) -> Result<WireMutation, NetError> {
    match resp {
        Response::Mutation(m) => Ok(m),
        other => unexpected(&other),
    }
}

fn expect_traced(resp: Response) -> Result<TracedResult, NetError> {
    match resp {
        Response::TracedSearch { entry, trace } => {
            Ok(TracedResult { result: range_result(entry)?, trace })
        }
        other => unexpected(&other),
    }
}

fn expect_metrics(resp: Response) -> Result<String, NetError> {
    match resp {
        Response::Metrics { text } => Ok(text),
        other => unexpected(&other),
    }
}

fn expect_stats(resp: Response) -> Result<RemoteStats, NetError> {
    match resp {
        Response::Stats { rows, dim, tau_max, shards, stats } => {
            Ok(RemoteStats { rows, dim, tau_max, shards, stats })
        }
        other => unexpected(&other),
    }
}

fn expect_health(resp: Response) -> Result<NodeHealth, NetError> {
    match resp {
        Response::Health(h) => Ok(h),
        other => unexpected(&other),
    }
}

fn expect_slow_queries(resp: Response) -> Result<Vec<QueryTrace>, NetError> {
    match resp {
        Response::SlowQueries { traces } => Ok(traces),
        other => unexpected(&other),
    }
}

fn expect_fleet_metrics(resp: Response) -> Result<FleetMetrics, NetError> {
    match resp {
        Response::AggregateMetrics { merged, nodes } => Ok(FleetMetrics { merged, nodes }),
        other => unexpected(&other),
    }
}

fn expect_manifest(resp: Response) -> Result<Option<FleetManifest>, NetError> {
    match resp {
        Response::Manifest { manifest } => Ok(manifest),
        other => unexpected(&other),
    }
}

fn expect_manifest_ack(resp: Response) -> Result<u64, NetError> {
    match resp {
        Response::ManifestAck { version } => Ok(version),
        other => unexpected(&other),
    }
}

/// A blocking `GPHN` client: a pool of pipelined connections to one
/// server. Cloneable across threads via `Arc`; all methods take `&self`.
pub struct GphClient {
    conns: Vec<Conn>,
    next: AtomicUsize,
}

impl GphClient {
    /// Connects one pooled connection to `addr`.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<GphClient, NetError> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit knobs (pool size, Nagle).
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        cfg: ClientConfig,
    ) -> Result<GphClient, NetError> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| NetError::Protocol("address resolved to nothing".into()))?;
        let n = cfg.connections.max(1);
        let conns = (0..n).map(|_| Conn::open(&addr, &cfg)).collect::<Result<Vec<_>, _>>()?;
        Ok(GphClient { conns, next: AtomicUsize::new(0) })
    }

    /// Connections in the pool.
    pub fn pool_size(&self) -> usize {
        self.conns.len()
    }

    fn conn(&self) -> &Conn {
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.conns.len();
        &self.conns[i]
    }

    fn submit<T>(
        &self,
        req: &Request,
        map: fn(Response) -> Result<T, NetError>,
    ) -> Result<NetTicket<T>, NetError> {
        Ok(NetTicket { rx: self.conn().submit(req)?, map })
    }

    /// Pipelined liveness probe.
    pub fn submit_ping(&self) -> Result<NetTicket<()>, NetError> {
        self.submit(&Request::Ping, expect_pong)
    }

    /// Round-trips a ping and returns its latency.
    pub fn ping(&self) -> Result<Duration, NetError> {
        let t0 = Instant::now();
        self.submit_ping()?.wait()?;
        Ok(t0.elapsed())
    }

    /// Pipelined range search.
    pub fn submit_search(
        &self,
        query: &[u64],
        tau: u32,
    ) -> Result<NetTicket<RangeResult>, NetError> {
        self.submit(&Request::Search { tau, query: query.to_vec() }, expect_range)
    }

    /// Range search (submit + wait).
    pub fn search(&self, query: &[u64], tau: u32) -> Result<RangeResult, NetError> {
        self.submit_search(query, tau)?.wait()
    }

    /// Pipelined traced range search: the server always runs the traced
    /// engine path (bypassing its result cache) and returns the query's
    /// own per-phase [`QueryTrace`] with the hits.
    pub fn submit_search_traced(
        &self,
        query: &[u64],
        tau: u32,
    ) -> Result<NetTicket<TracedResult>, NetError> {
        self.submit_search_traced_hop(query, tau, 0)
    }

    /// [`GphClient::submit_search_traced`] carrying a distributed trace
    /// id: the server stamps `trace_id` (with its own node identity and
    /// start timestamp) into the returned trace's hop context, so a
    /// fleet client can correlate hops across nodes.
    pub fn submit_search_traced_hop(
        &self,
        query: &[u64],
        tau: u32,
        trace_id: u64,
    ) -> Result<NetTicket<TracedResult>, NetError> {
        self.submit(&Request::TracedSearch { tau, query: query.to_vec(), trace_id }, expect_traced)
    }

    /// Traced range search (submit + wait).
    pub fn search_traced(&self, query: &[u64], tau: u32) -> Result<TracedResult, NetError> {
        self.submit_search_traced(query, tau)?.wait()
    }

    /// Pipelined health probe: shard ownership, generation, queue
    /// occupancy, and the degraded flag, answered inline by the server
    /// (never queued behind engine work).
    pub fn submit_health(&self) -> Result<NetTicket<NodeHealth>, NetError> {
        self.submit(&Request::Health, expect_health)
    }

    /// Health probe (submit + wait).
    pub fn health(&self) -> Result<NodeHealth, NetError> {
        self.submit_health()?.wait()
    }

    /// Pipelined drain of the server's slow-query ring: up to `max`
    /// most recent retained traces (`0` = all).
    pub fn submit_slow_queries(&self, max: u32) -> Result<NetTicket<Vec<QueryTrace>>, NetError> {
        self.submit(&Request::SlowQueries { max }, expect_slow_queries)
    }

    /// Slow-query drain (submit + wait), most recent last.
    pub fn slow_queries(&self, max: u32) -> Result<Vec<QueryTrace>, NetError> {
        self.submit_slow_queries(max)?.wait()
    }

    /// Pipelined fleet-wide metrics aggregation (metastore servers
    /// only): the metastore scrapes every live node in its manifest and
    /// merges the expositions, reporting unreachable nodes as stale.
    pub fn submit_aggregate_metrics(&self) -> Result<NetTicket<FleetMetrics>, NetError> {
        self.submit(&Request::AggregateMetrics, expect_fleet_metrics)
    }

    /// Fleet-wide metrics aggregation (submit + wait).
    pub fn aggregate_metrics(&self) -> Result<FleetMetrics, NetError> {
        self.submit_aggregate_metrics()?.wait()
    }

    /// Pipelined top-k search.
    pub fn submit_topk(&self, query: &[u64], k: usize) -> Result<NetTicket<TopKResult>, NetError> {
        self.submit(&Request::TopK { k: k as u32, query: query.to_vec() }, expect_topk)
    }

    /// Top-k search (submit + wait).
    pub fn topk(&self, query: &[u64], k: usize) -> Result<TopKResult, NetError> {
        self.submit_topk(query, k)?.wait()
    }

    /// Pipelined batch of range searches at a shared threshold; the
    /// server runs the whole batch as one job. The wire format carries
    /// one width for the whole batch, so every query must have the same
    /// word count (and at least one word).
    pub fn submit_batch_search(
        &self,
        queries: &[&[u64]],
        tau: u32,
    ) -> Result<NetTicket<Vec<BatchEntry>>, NetError> {
        if let Some(first) = queries.first() {
            if first.is_empty() || queries.iter().any(|q| q.len() != first.len()) {
                return Err(NetError::Protocol(
                    "batch queries must share one nonzero word count".into(),
                ));
            }
        }
        let queries = queries.iter().map(|q| q.to_vec()).collect();
        self.submit(&Request::BatchSearch { tau, queries }, expect_batch)
    }

    /// Batch search (submit + wait), entries in submission order.
    pub fn batch_search(&self, queries: &[&[u64]], tau: u32) -> Result<Vec<BatchEntry>, NetError> {
        self.submit_batch_search(queries, tau)?.wait()
    }

    /// Pipelined insert of `row` under `id`.
    pub fn submit_insert(&self, id: u32, row: &[u64]) -> Result<NetTicket<WireMutation>, NetError> {
        self.submit(&Request::Insert { id, row: row.to_vec() }, expect_mutation)
    }

    /// Inserts `row` under `id` (errors if `id` is live remotely).
    pub fn insert(&self, id: u32, row: &[u64]) -> Result<WireMutation, NetError> {
        self.submit_insert(id, row)?.wait()
    }

    /// Pipelined delete.
    pub fn submit_delete(&self, id: u32) -> Result<NetTicket<WireMutation>, NetError> {
        self.submit(&Request::Delete { id }, expect_mutation)
    }

    /// Tombstones `id`; [`WireMutation::NotFound`] when it was not live.
    pub fn delete(&self, id: u32) -> Result<WireMutation, NetError> {
        self.submit_delete(id)?.wait()
    }

    /// Pipelined upsert.
    pub fn submit_upsert(&self, id: u32, row: &[u64]) -> Result<NetTicket<WireMutation>, NetError> {
        self.submit(&Request::Upsert { id, row: row.to_vec() }, expect_mutation)
    }

    /// Inserts `row` under `id`, replacing any live row with that id.
    pub fn upsert(&self, id: u32, row: &[u64]) -> Result<WireMutation, NetError> {
        self.submit_upsert(id, row)?.wait()
    }

    /// Fetches the server's index shape and service counters.
    pub fn stats(&self) -> Result<RemoteStats, NetError> {
        self.submit(&Request::Stats, expect_stats)?.wait()
    }

    /// Pipelined fetch of the server's Prometheus text exposition.
    pub fn submit_metrics(&self) -> Result<NetTicket<String>, NetError> {
        self.submit(&Request::Metrics, expect_metrics)
    }

    /// Fetches the server's Prometheus text exposition.
    pub fn metrics(&self) -> Result<String, NetError> {
        self.submit_metrics()?.wait()
    }

    /// Pipelined manifest fetch (metastore servers only).
    pub fn submit_get_manifest(&self) -> Result<NetTicket<Option<FleetManifest>>, NetError> {
        self.submit(&Request::GetManifest, expect_manifest)
    }

    /// Fetches the metastore's current fleet manifest; `None` before
    /// the first publish.
    pub fn get_manifest(&self) -> Result<Option<FleetManifest>, NetError> {
        self.submit_get_manifest()?.wait()
    }

    /// Pipelined manifest publish (metastore servers only).
    pub fn submit_publish_manifest(
        &self,
        manifest: &FleetManifest,
    ) -> Result<NetTicket<u64>, NetError> {
        self.submit(&Request::PublishManifest { manifest: manifest.clone() }, expect_manifest_ack)
    }

    /// Publishes `manifest` and returns the installed version. The
    /// metastore only accepts strictly increasing versions; losing a
    /// race surfaces as [`WireError::ManifestStale`] with the version it
    /// kept.
    pub fn publish_manifest(&self, manifest: &FleetManifest) -> Result<u64, NetError> {
        self.submit_publish_manifest(manifest)?.wait()
    }
}

//! Fleet routing: a [`FleetClient`] that serves searches across many
//! `GPHN` nodes as if they were one index.
//!
//! The fleet's layout comes from a [`FleetManifest`] fetched from a
//! metastore ([`crate::MetastoreServer`]): node groups own disjoint
//! shard-slot sets that partition `0..n_shards`, and record ids map to
//! slots by the **same** stable id hash the in-process
//! [`ShardedIndex`] uses ([`ShardedIndex::shard_of`]) — so a record
//! lives on exactly one group and routing never needs an id table.
//!
//! Reads scatter to every group and gather exactly:
//!
//! * range search — groups hold disjoint ids, so the union is a sort;
//! * top-k — each group answers its own exact top-`k`, and
//!   [`merge_topk`] (the same merge the in-process scatter-gather uses)
//!   provably reconstructs the global top-`k` from those lists.
//!
//! Mutations route to the single group owning the id's slot, primary
//! address only. Idempotent reads retry on transport failures — first
//! across the owning group's addresses (primary, then replicas), with
//! exponential backoff between passes, and finally after re-fetching
//! the manifest from the metastore (which is how a client rides through
//! a rolling restart: the republished manifest points the slots at the
//! restarted or substitute address). Typed server answers
//! ([`NetError::Remote`]) are authoritative and never retried.

use crate::client::{ClientConfig, GphClient, NetTicket, TopKResult, TracedResult};
use crate::protocol::{FleetManifest, NodeHealth, WireMutation};
use crate::NetError;
use gph_obs::{FleetTrace, HopTrace};
use gph_serve::{merge_topk, ShardedIndex};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fleet-client knobs.
#[derive(Clone, Copy, Debug)]
pub struct FleetConfig {
    /// Passes over a group's address list before (and after) a manifest
    /// refresh; transport failures move to the next address, the next
    /// pass backs off.
    pub attempts: usize,
    /// Backoff after a failed pass, doubling per pass.
    pub backoff: Duration,
    /// Bound on each request's wait; a timeout counts as a transport
    /// failure and moves on (only idempotent requests are retried).
    pub request_timeout: Duration,
    /// Bound on each [`FleetClient::refresh_health`] probe: an address
    /// that cannot answer the cheap `Health` op this fast is demoted.
    pub probe_timeout: Duration,
    /// Per-node connection knobs.
    pub client: ClientConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            attempts: 3,
            backoff: Duration::from_millis(20),
            request_timeout: Duration::from_secs(10),
            probe_timeout: Duration::from_secs(1),
            client: ClientConfig::default(),
        }
    }
}

/// A fleet-wide range-search result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FleetSearch {
    /// Matching record ids across the whole fleet, ascending.
    pub ids: Vec<u32>,
    /// True when any group's admission control degraded its part of the
    /// search (the union may then miss ids near the requested radius).
    pub degraded: bool,
}

/// A fleet-wide top-k result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FleetTopK {
    /// `(id, distance)` ascending by `(distance, id)` across the fleet.
    pub hits: Vec<(u32, u32)>,
    /// True when any group's admission control capped its escalation.
    pub degraded: bool,
}

/// A fleet-wide traced range search: the merged hits plus a per-hop
/// [`FleetTrace`] attributing, for every node, engine time vs
/// network + queue time.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetTracedSearch {
    /// Matching record ids across the whole fleet, ascending.
    pub ids: Vec<u32>,
    /// True when any group's admission control degraded its part.
    pub degraded: bool,
    /// The merged distributed trace.
    pub trace: FleetTrace,
}

/// One address's outcome in a [`FleetClient::refresh_health`] sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AddressHealth {
    /// The probed address.
    pub addr: String,
    /// The node's answer; `None` when the probe failed in transport.
    pub health: Option<NodeHealth>,
    /// Whether the sweep demoted this address (unreachable or
    /// self-reported degraded).
    pub demoted: bool,
}

struct State {
    manifest: FleetManifest,
    /// Pooled clients by address (fleet nodes and the metastore alike);
    /// transport failures evict, the next use reconnects.
    conns: HashMap<String, Arc<GphClient>>,
}

/// A client for a whole fleet: routes by manifest, scatter-gathers
/// reads, merges exactly, and retries idempotent reads across replicas.
pub struct FleetClient {
    metastore_addr: String,
    cfg: FleetConfig,
    state: Mutex<State>,
    /// Distributed trace ids handed out by [`FleetClient::search_traced`].
    next_trace_id: AtomicU64,
    /// Addresses the last health sweep demoted (unreachable or
    /// self-reported degraded); the retry ladder tries them last.
    demoted: Mutex<HashSet<String>>,
}

impl FleetClient {
    /// Fetches the manifest from the metastore at `metastore_addr` and
    /// builds a client routing by it. Errors if no manifest has been
    /// published yet.
    pub fn connect(metastore_addr: &str, cfg: FleetConfig) -> Result<FleetClient, NetError> {
        let client = FleetClient {
            metastore_addr: metastore_addr.to_string(),
            cfg,
            state: Mutex::new(State {
                manifest: FleetManifest { version: 0, n_shards: 1, nodes: Vec::new() },
                conns: HashMap::new(),
            }),
            next_trace_id: AtomicU64::new(1),
            demoted: Mutex::new(HashSet::new()),
        };
        let manifest = client.fetch_manifest()?;
        client.state.lock().manifest = manifest;
        Ok(client)
    }

    /// The manifest currently routing this client.
    pub fn manifest(&self) -> FleetManifest {
        self.state.lock().manifest.clone()
    }

    /// The shard slot `id` routes to — [`ShardedIndex::shard_of`] under
    /// the manifest's slot count, byte-identical to how every node's
    /// index routes the id internally.
    pub fn slot_of(&self, id: u32) -> u32 {
        ShardedIndex::shard_of(id, self.state.lock().manifest.n_shards as usize) as u32
    }

    /// The manifest node-group index owning `id`.
    pub fn node_for(&self, id: u32) -> Option<usize> {
        let st = self.state.lock();
        let slot = ShardedIndex::shard_of(id, st.manifest.n_shards as usize) as u32;
        st.manifest.node_for_slot(slot)
    }

    /// Re-fetches the manifest from the metastore, adopting it only if
    /// its version beats the current one (routing never goes backwards).
    /// Returns the version in effect afterwards.
    pub fn refresh_manifest(&self) -> Result<u64, NetError> {
        let fresh = self.fetch_manifest()?;
        let mut st = self.state.lock();
        if fresh.version > st.manifest.version {
            st.manifest = fresh;
        }
        Ok(st.manifest.version)
    }

    fn fetch_manifest(&self) -> Result<FleetManifest, NetError> {
        // One reconnect retry: the cached metastore connection may have
        // died since the last fetch.
        let mut last = NetError::Closed;
        for _ in 0..2 {
            let client = match self.client_for(&self.metastore_addr) {
                Ok(c) => c,
                Err(e) => {
                    last = e;
                    continue;
                }
            };
            match client
                .submit_get_manifest()
                .and_then(|t| t.wait_timeout(self.cfg.request_timeout))
            {
                Ok(Some(manifest)) => {
                    manifest.validate().map_err(NetError::Protocol)?;
                    return Ok(manifest);
                }
                Ok(None) => {
                    return Err(NetError::Protocol(
                        "the metastore has no published manifest yet".into(),
                    ))
                }
                Err(e @ NetError::Remote(_)) => return Err(e),
                Err(e) => {
                    self.evict(&self.metastore_addr);
                    last = e;
                }
            }
        }
        Err(last)
    }

    /// Fleet-wide range search at threshold `tau`: every group's ids,
    /// merged ascending (groups are disjoint, so the merge is a sort).
    pub fn search(&self, query: &[u64], tau: u32) -> Result<FleetSearch, NetError> {
        let results = self.scatter(&|c| c.submit_search(query, tau))?;
        let mut ids = Vec::new();
        let mut degraded = false;
        for r in results {
            degraded |= r.degraded_from.is_some();
            ids.extend(r.ids);
        }
        ids.sort_unstable();
        Ok(FleetSearch { ids, degraded })
    }

    /// Fleet-wide traced range search: scatters a `TracedSearch` (with
    /// one shared distributed trace id) to every node group, measures
    /// each hop's client-side end-to-end time, and merges the per-node
    /// [`gph_obs::QueryTrace`]s into a [`FleetTrace`] that attributes
    /// node-side engine time vs network + queue time per hop —
    /// including which hop was the straggler that bounded the tail.
    pub fn search_traced(&self, query: &[u64], tau: u32) -> Result<FleetTracedSearch, NetError> {
        let trace_id = self.next_trace_id.fetch_add(1, Ordering::Relaxed);
        let manifest = self.manifest();
        let t0 = Instant::now();
        let pending: Vec<(u32, String, Option<NetTicket<TracedResult>>, Instant)> = manifest
            .nodes
            .iter()
            .map(|node| {
                let addr = node.addrs[0].clone();
                let submitted = Instant::now();
                let ticket = self
                    .client_for(&addr)
                    .ok()
                    .and_then(|c| c.submit_search_traced_hop(query, tau, trace_id).ok());
                (node.slots[0], addr, ticket, submitted)
            })
            .collect();
        let mut ids = Vec::new();
        let mut degraded = false;
        let mut hops = Vec::with_capacity(pending.len());
        for (slot, addr, ticket, submitted) in pending {
            let fast = ticket.and_then(|t| match t.wait_timeout(self.cfg.request_timeout) {
                Ok(v) => Some(Ok((v, submitted.elapsed()))),
                Err(e @ NetError::Remote(_)) => Some(Err(e)),
                Err(_) => None,
            });
            let (res, e2e) = match fast {
                Some(result) => result?,
                None => {
                    // Retry ladder (replicas, backoff, manifest refresh):
                    // the hop's e2e restarts with the retried request.
                    self.evict(&addr);
                    let retried = Instant::now();
                    let v = self.slot_request(slot, &|c| {
                        c.submit_search_traced_hop(query, tau, trace_id)
                    })?;
                    (v, retried.elapsed())
                }
            };
            degraded |= res.result.degraded_from.is_some();
            ids.extend(res.result.ids);
            let trace = res.trace.unwrap_or_default();
            // The server stamps its own bound address; fall back to the
            // address we dialed if the hop answered without a trace.
            let node = if trace.node.is_empty() { addr } else { trace.node.clone() };
            hops.push(HopTrace { node, e2e_ns: e2e.as_nanos() as u64, trace });
        }
        ids.sort_unstable();
        let total_ns = t0.elapsed().as_nanos() as u64;
        let trace = FleetTrace::merge(trace_id, tau, total_ns, hops);
        Ok(FleetTracedSearch { ids, degraded, trace })
    }

    /// Probes every address in the manifest with the cheap `Health` op
    /// (bounded by [`FleetConfig::probe_timeout`]) and updates the demotion
    /// set: unreachable or self-reported-degraded addresses are tried
    /// **last** by the retry ladder until a later sweep clears them.
    /// Returns every address's outcome, in manifest order.
    pub fn refresh_health(&self) -> Vec<AddressHealth> {
        let manifest = self.manifest();
        let mut out = Vec::new();
        for node in &manifest.nodes {
            for addr in &node.addrs {
                let health = self.client_for(addr).ok().and_then(|c| {
                    c.submit_health().and_then(|t| t.wait_timeout(self.cfg.probe_timeout)).ok()
                });
                if health.is_none() {
                    self.evict(addr);
                }
                let demote = health.as_ref().is_none_or(|h| h.degraded);
                let mut demoted = self.demoted.lock();
                if demote {
                    demoted.insert(addr.clone());
                } else {
                    demoted.remove(addr);
                }
                out.push(AddressHealth { addr: addr.clone(), health, demoted: demote });
            }
        }
        out
    }

    /// Addresses the last health sweep demoted.
    pub fn demoted(&self) -> HashSet<String> {
        self.demoted.lock().clone()
    }

    /// Fleet-wide exact top-k: each group answers its own exact top-`k`
    /// and [`merge_topk`] reconstructs the global list.
    pub fn topk(&self, query: &[u64], k: usize) -> Result<FleetTopK, NetError> {
        let results: Vec<TopKResult> = self.scatter(&|c| c.submit_topk(query, k))?;
        let degraded = results.iter().any(|r| r.degraded_cap.is_some());
        let hits = merge_topk(results.into_iter().map(|r| r.hits), k);
        Ok(FleetTopK { hits, degraded })
    }

    /// Inserts `row` under `id` on the owning group's primary. Not
    /// retried across addresses (an insert is not idempotent); transport
    /// failures reconnect to the primary only.
    pub fn insert(&self, id: u32, row: &[u64]) -> Result<WireMutation, NetError> {
        self.primary_request(id, &|c| c.submit_insert(id, row))
    }

    /// Inserts-or-replaces `row` under `id` on the owning group's
    /// primary.
    pub fn upsert(&self, id: u32, row: &[u64]) -> Result<WireMutation, NetError> {
        self.primary_request(id, &|c| c.submit_upsert(id, row))
    }

    /// Tombstones `id` on the owning group's primary.
    pub fn delete(&self, id: u32) -> Result<WireMutation, NetError> {
        self.primary_request(id, &|c| c.submit_delete(id))
    }

    // -----------------------------------------------------------------
    // Routing machinery
    // -----------------------------------------------------------------

    fn client_for(&self, addr: &str) -> Result<Arc<GphClient>, NetError> {
        if let Some(c) = self.state.lock().conns.get(addr) {
            return Ok(Arc::clone(c));
        }
        // Connect outside the lock: a slow handshake must not stall
        // requests to other nodes on other threads.
        let fresh = Arc::new(GphClient::connect_with(addr, self.cfg.client)?);
        Ok(Arc::clone(self.state.lock().conns.entry(addr.to_string()).or_insert(fresh)))
    }

    fn evict(&self, addr: &str) {
        self.state.lock().conns.remove(addr);
    }

    /// Scatters one read to every node group and gathers the answers in
    /// group order. The happy path pipelines the request to every
    /// group's primary at once; a group whose fast answer fails in
    /// transport falls back to the full per-slot retry ladder.
    fn scatter<T>(
        &self,
        submit: &dyn Fn(&GphClient) -> Result<NetTicket<T>, NetError>,
    ) -> Result<Vec<T>, NetError> {
        let manifest = self.manifest();
        let pending: Vec<(u32, Option<NetTicket<T>>)> = manifest
            .nodes
            .iter()
            .map(|node| {
                let slot = node.slots[0];
                let ticket = self.client_for(&node.addrs[0]).ok().and_then(|c| submit(&c).ok());
                (slot, ticket)
            })
            .collect();
        let mut out = Vec::with_capacity(pending.len());
        for (slot, ticket) in pending {
            let fast = ticket.and_then(|t| match t.wait_timeout(self.cfg.request_timeout) {
                Ok(v) => Some(Ok(v)),
                // A typed server answer is authoritative; surface it.
                Err(e @ NetError::Remote(_)) => Some(Err(e)),
                // Transport trouble: fall back to the retry ladder.
                Err(_) => None,
            });
            match fast {
                Some(result) => out.push(result?),
                None => out.push(self.slot_request(slot, submit)?),
            }
        }
        Ok(out)
    }

    /// The retry ladder for one idempotent read against the group owning
    /// `slot`: every address in the group (primary first, replicas
    /// after), [`FleetConfig::attempts`] passes with doubling backoff,
    /// then one manifest refresh and the same ladder over the new owner.
    fn slot_request<T>(
        &self,
        slot: u32,
        submit: &dyn Fn(&GphClient) -> Result<NetTicket<T>, NetError>,
    ) -> Result<T, NetError> {
        let mut last = NetError::Closed;
        for round in 0..2 {
            if round == 1 && self.refresh_manifest().is_err() {
                break;
            }
            let mut addrs = {
                let st = self.state.lock();
                match st.manifest.node_for_slot(slot) {
                    Some(ni) => st.manifest.nodes[ni].addrs.clone(),
                    None => {
                        return Err(NetError::Protocol(format!("no node owns shard slot {slot}")))
                    }
                }
            };
            // Health-driven ordering: addresses the last sweep demoted
            // (unreachable or degraded) go last, so a healthy replica
            // answers before we burn a timeout on a sick primary. The
            // sort is stable, so primary-before-replica order survives
            // within each class.
            {
                let demoted = self.demoted.lock();
                if !demoted.is_empty() {
                    addrs.sort_by_key(|a| demoted.contains(a));
                }
            }
            for attempt in 0..self.cfg.attempts.max(1) {
                for addr in &addrs {
                    let client = match self.client_for(addr) {
                        Ok(c) => c,
                        Err(e) => {
                            last = e;
                            continue;
                        }
                    };
                    match submit(&client).and_then(|t| t.wait_timeout(self.cfg.request_timeout)) {
                        Ok(v) => return Ok(v),
                        Err(e @ NetError::Remote(_)) => return Err(e),
                        Err(e) => {
                            self.evict(addr);
                            last = e;
                        }
                    }
                }
                if attempt + 1 < self.cfg.attempts.max(1) {
                    std::thread::sleep(self.cfg.backoff * (1 << attempt.min(8)) as u32);
                }
            }
        }
        Err(last)
    }

    /// One mutation against the primary of the group owning `id`'s slot,
    /// with reconnects to the primary only (plus a manifest refresh, for
    /// primaries that moved in a rolling restart).
    fn primary_request<T>(
        &self,
        id: u32,
        submit: &dyn Fn(&GphClient) -> Result<NetTicket<T>, NetError>,
    ) -> Result<T, NetError> {
        let mut last = NetError::Closed;
        for round in 0..2 {
            if round == 1 && self.refresh_manifest().is_err() {
                break;
            }
            let primary = {
                let st = self.state.lock();
                let slot = ShardedIndex::shard_of(id, st.manifest.n_shards as usize) as u32;
                match st.manifest.node_for_slot(slot) {
                    Some(ni) => st.manifest.nodes[ni].addrs[0].clone(),
                    None => {
                        return Err(NetError::Protocol(format!("no node owns shard slot {slot}")))
                    }
                }
            };
            for attempt in 0..self.cfg.attempts.max(1) {
                let client = match self.client_for(&primary) {
                    Ok(c) => c,
                    Err(e) => {
                        last = e;
                        if attempt + 1 < self.cfg.attempts.max(1) {
                            std::thread::sleep(self.cfg.backoff * (1 << attempt.min(8)) as u32);
                        }
                        continue;
                    }
                };
                match submit(&client).and_then(|t| t.wait_timeout(self.cfg.request_timeout)) {
                    Ok(v) => return Ok(v),
                    Err(e @ NetError::Remote(_)) => return Err(e),
                    Err(e) => {
                        self.evict(&primary);
                        last = e;
                    }
                }
                if attempt + 1 < self.cfg.attempts.max(1) {
                    std::thread::sleep(self.cfg.backoff * (1 << attempt.min(8)) as u32);
                }
            }
        }
        Err(last)
    }
}

//! # gph-net
//!
//! Network serving for the GPH reproduction: the subsystem that turns
//! the in-process [`gph_serve::QueryService`] into an actual server —
//! and one server into a fleet.
//!
//! ```text
//!                       ┌───────────── one node ─────────────┐
//!   GphClient ──(GPHN)──▶ EventLoop: acceptor + W workers    │
//!      │                │   (nonblocking sockets, poll(2),   │
//!   connection pool,    │    per-conn buffers, backpressure, │
//!   submit/wait tickets │    idle eviction, graceful drain)  │
//!      │                │              │ Reply::Later        │
//!   FleetClient         │        resolver pool ──▶ Arc<QueryService>
//!      │                └────────────────────────────────────┘
//!      ├──▶ node group A (primary + replicas)   ─ slots {0,3,6}
//!      ├──▶ node group B                        ─ slots {1,4,7}
//!      ├──▶ node group C                        ─ slots {2,5}
//!      └──▶ MetastoreServer: versioned FleetManifest (shard→node map)
//! ```
//!
//! * [`protocol`] — the `GPHN` length-prefixed, versioned, CRC-32
//!   checksummed binary wire format, including the fleet metastore ops
//!   (`GetManifest`/`PublishManifest`) and the [`FleetManifest`] codec.
//!   Corruption anywhere in a frame is a typed error, never a panic.
//! * [`event`] — the readiness-driven [`EventLoop`]: one acceptor and a
//!   small worker set multiplex thousands of nonblocking connections
//!   (no per-connection threads); blocking query waits run on a
//!   separate resolver pool via [`Reply::Later`]. Write buffers are
//!   capped (backpressure pauses reading), idle connections can be
//!   evicted, and shutdown drains in-flight work.
//! * [`server`] — [`NetServer`]: the query-node [`RequestHandler`] over
//!   an [`EventLoop`] and an `Arc<QueryService>`.
//! * [`metastore`] — [`MetastoreServer`]: a tiny manifest server that
//!   versions the fleet's shard→node map (strictly increasing) and
//!   federates fleet metrics: `AggregateMetrics` scrapes every node in
//!   the manifest in parallel, merges the expositions, and reports
//!   unreachable nodes as stale instead of failing.
//! * [`client`] — a blocking [`GphClient`] with connection pooling and
//!   pipelined `submit_*`/`wait` mirroring the in-process
//!   [`gph_serve::Ticket`] API.
//! * [`fleet`] — [`FleetClient`]: routes by manifest with the same
//!   stable id hash the in-process shards use, scatter-gathers reads
//!   with the exact top-k merge, and retries idempotent reads across
//!   replicas with timeout and backoff. Traced fleet searches merge
//!   every node's hop trace into a [`gph_obs::FleetTrace`] (engine vs
//!   network + queue time per hop, straggler identification), and
//!   cheap `Health` probes demote saturated or unreachable replicas in
//!   the retry ladder.
//! * [`testing`] — a deterministic, seeded fault-injection proxy
//!   ([`FaultProxy`]) for exercising all of the above under partial
//!   writes, torn frames, stalls, resets, and delayed accepts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod event;
pub mod fleet;
pub mod metastore;
pub mod protocol;
pub mod server;
pub mod testing;

pub use client::{
    BatchEntry, ClientConfig, FleetMetrics, GphClient, NetTicket, RangeResult, RemoteStats,
    TopKResult, TracedResult,
};
pub use event::{EventLoop, NetServerStats, Reply, RequestHandler, ServerConfig};
pub use fleet::{
    AddressHealth, FleetClient, FleetConfig, FleetSearch, FleetTopK, FleetTracedSearch,
};
pub use metastore::MetastoreServer;
pub use protocol::{
    FleetManifest, FleetNode, Message, NodeHealth, NodeScrape, Request, Response, SearchEntry,
    WireError, WireMutation,
};
pub use server::NetServer;
pub use testing::{FaultPlan, FaultProxy, FaultStats};

/// Errors produced by the wire protocol, the client, and the server.
#[derive(Debug)]
pub enum NetError {
    /// An underlying socket error.
    Io(std::io::Error),
    /// A frame failed to decode (bad magic, checksum mismatch,
    /// truncation, unknown opcode, ...). The connection is unusable
    /// afterwards because framing is lost.
    Protocol(String),
    /// The peer answered with a typed error frame.
    Remote(protocol::WireError),
    /// The connection closed before the response arrived.
    Closed,
    /// No response arrived within the caller's deadline. The request
    /// may still complete on the server — only retry idempotent ones.
    Timeout,
}

impl NetError {
    /// True when this is a remote admission rejection; returns the
    /// `(estimated_cost, budget)` the server reported.
    pub fn rejected(&self) -> Option<(f64, f64)> {
        match self {
            NetError::Remote(protocol::WireError::Rejected { estimated_cost, budget }) => {
                Some((*estimated_cost, *budget))
            }
            _ => None,
        }
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io error: {e}"),
            NetError::Protocol(m) => write!(f, "protocol error: {m}"),
            NetError::Remote(e) => write!(f, "remote error: {e}"),
            NetError::Closed => write!(f, "connection closed"),
            NetError::Timeout => write!(f, "timed out waiting for the response"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<hamming_core::HammingError> for NetError {
    fn from(e: hamming_core::HammingError) -> Self {
        match e {
            hamming_core::HammingError::Io(io) => NetError::Io(io),
            other => NetError::Protocol(other.to_string()),
        }
    }
}

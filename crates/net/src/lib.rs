//! # gph-net
//!
//! Network serving for the GPH reproduction: the subsystem that turns
//! the in-process [`gph_serve::QueryService`] into an actual server.
//! Three layers:
//!
//! ```text
//!   GphClient ──(GPHN frames over TCP, pipelined by request id)──▶ NetServer
//!      │                                                              │
//!   connection pool,                                        accept thread +
//!   submit/wait tickets                                  per-connection reader
//!   typed errors                                          and writer threads
//!                                                                    │
//!                                                         Arc<QueryService>
//! ```
//!
//! * [`protocol`] — the `GPHN` length-prefixed, versioned, CRC-32
//!   checksummed binary wire format. Corruption anywhere in a frame is a
//!   typed protocol error, never a panic.
//! * [`server`] — a `TcpListener` front end: each connection gets a
//!   reader thread (decodes frames, submits work) and a writer thread
//!   (waits tickets, encodes responses), so a slow query never stalls
//!   the socket. Admission rejections map to typed error frames;
//!   shutdown drains in-flight tickets before closing.
//! * [`client`] — a blocking [`GphClient`] with connection pooling and
//!   pipelined `submit_*`/`wait` mirroring the in-process
//!   [`gph_serve::Ticket`] API.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{
    BatchEntry, ClientConfig, GphClient, NetTicket, RangeResult, RemoteStats, TopKResult,
    TracedResult,
};
pub use protocol::{Message, Request, Response, SearchEntry, WireError, WireMutation};
pub use server::{NetServer, NetServerStats, ServerConfig};

/// Errors produced by the wire protocol, the client, and the server.
#[derive(Debug)]
pub enum NetError {
    /// An underlying socket error.
    Io(std::io::Error),
    /// A frame failed to decode (bad magic, checksum mismatch,
    /// truncation, unknown opcode, ...). The connection is unusable
    /// afterwards because framing is lost.
    Protocol(String),
    /// The peer answered with a typed error frame.
    Remote(protocol::WireError),
    /// The connection closed before the response arrived.
    Closed,
}

impl NetError {
    /// True when this is a remote admission rejection; returns the
    /// `(estimated_cost, budget)` the server reported.
    pub fn rejected(&self) -> Option<(f64, f64)> {
        match self {
            NetError::Remote(protocol::WireError::Rejected { estimated_cost, budget }) => {
                Some((*estimated_cost, *budget))
            }
            _ => None,
        }
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io error: {e}"),
            NetError::Protocol(m) => write!(f, "protocol error: {m}"),
            NetError::Remote(e) => write!(f, "remote error: {e}"),
            NetError::Closed => write!(f, "connection closed"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<hamming_core::HammingError> for NetError {
    fn from(e: hamming_core::HammingError) -> Self {
        match e {
            hamming_core::HammingError::Io(io) => NetError::Io(io),
            other => NetError::Protocol(other.to_string()),
        }
    }
}

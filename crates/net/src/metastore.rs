//! The fleet metastore: a tiny manifest server speaking the `GPHN`
//! `GetManifest`/`PublishManifest` ops over the same [`EventLoop`] the
//! query servers run on.
//!
//! The metastore holds exactly one piece of state — the current
//! [`FleetManifest`] — and enforces one rule: published versions must
//! strictly increase. A publish that does not beat the current version
//! is answered with [`WireError::ManifestStale`] carrying the version
//! the store kept, so a racing deployer always learns what it lost to.
//! Readers ([`crate::FleetClient`], operators) fetch the manifest with
//! `GetManifest`; before the first publish they get an empty answer,
//! not an error. Invalid manifests (orphaned or doubly-owned shard
//! slots, address-less nodes) are rejected outright, so every manifest
//! a client can ever observe routes every shard exactly once.

use crate::event::{EventLoop, NetServerStats, Reply, RequestHandler, ServerConfig};
use crate::protocol::{FleetManifest, Request, Response, WireError};
use parking_lot::Mutex;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::Arc;

/// A manifest server: versions the fleet's shard→node map.
pub struct MetastoreServer {
    inner: EventLoop,
    state: Arc<MetastoreHandler>,
}

impl MetastoreServer {
    /// Binds `addr` and starts serving manifest ops.
    pub fn bind<A: ToSocketAddrs>(addr: A, cfg: ServerConfig) -> std::io::Result<MetastoreServer> {
        let state = Arc::new(MetastoreHandler { manifest: Mutex::new(None) });
        let handler: Arc<dyn RequestHandler> = Arc::clone(&state) as _;
        let inner = EventLoop::bind(addr, handler, cfg)?;
        Ok(MetastoreServer { inner, state })
    }

    /// The address the metastore is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr()
    }

    /// The manifest currently installed, if any (same view `GetManifest`
    /// serves).
    pub fn manifest(&self) -> Option<FleetManifest> {
        self.state.manifest.lock().clone()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> NetServerStats {
        self.inner.stats()
    }

    /// Drains in-flight requests, joins every thread, and returns the
    /// final counters.
    pub fn shutdown(self) -> NetServerStats {
        self.inner.shutdown()
    }
}

struct MetastoreHandler {
    manifest: Mutex<Option<FleetManifest>>,
}

impl RequestHandler for MetastoreHandler {
    fn handle(&self, req: Request) -> Reply {
        Reply::Now(match req {
            Request::Ping => Response::Pong,
            Request::GetManifest => Response::Manifest { manifest: self.manifest.lock().clone() },
            Request::PublishManifest { manifest } => {
                if let Err(msg) = manifest.validate() {
                    return Reply::Now(Response::Error(WireError::Unsupported(format!(
                        "invalid manifest: {msg}"
                    ))));
                }
                let mut current = self.manifest.lock();
                match current.as_ref() {
                    Some(kept) if manifest.version <= kept.version => {
                        Response::Error(WireError::ManifestStale { current: kept.version })
                    }
                    _ => {
                        let version = manifest.version;
                        *current = Some(manifest);
                        Response::ManifestAck { version }
                    }
                }
            }
            _ => Response::Error(WireError::Unsupported(
                "this server is a metastore; it serves only ping and manifest ops".into(),
            )),
        })
    }
}

//! The fleet metastore: a tiny manifest server speaking the `GPHN`
//! `GetManifest`/`PublishManifest` ops over the same [`EventLoop`] the
//! query servers run on.
//!
//! The metastore holds exactly one piece of state — the current
//! [`FleetManifest`] — and enforces one rule: published versions must
//! strictly increase. A publish that does not beat the current version
//! is answered with [`WireError::ManifestStale`] carrying the version
//! the store kept, so a racing deployer always learns what it lost to.
//! Readers ([`crate::FleetClient`], operators) fetch the manifest with
//! `GetManifest`; before the first publish they get an empty answer,
//! not an error. Invalid manifests (orphaned or doubly-owned shard
//! slots, address-less nodes) are rejected outright, so every manifest
//! a client can ever observe routes every shard exactly once.
//!
//! Because the metastore already knows where every node lives, it is
//! also the fleet's metrics federation point: `AggregateMetrics` fans a
//! `Metrics` scrape out to every node group's primary in parallel
//! (bounded per node by [`SCRAPE_TIMEOUT`]), merges the fresh
//! expositions with [`gph_obs::merge_expositions`], and reports nodes
//! that failed to answer as **stale** — with the scrape error attached
//! — rather than failing the whole aggregation. Scrape failures also
//! bump a per-node `gph_fed_scrape_errors_total` counter in the
//! metastore's own registry, so a flapping node is visible even to
//! dashboards that only watch the merged exposition.

use crate::client::{ClientConfig, GphClient};
use crate::event::{EventLoop, NetServerStats, Reply, RequestHandler, ServerConfig};
use crate::protocol::{FleetManifest, NodeScrape, Request, Response, WireError};
use gph_obs::{merge_expositions, MetricsRegistry};
use parking_lot::Mutex;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// Per-node budget for one `AggregateMetrics` scrape: connect plus the
/// metrics round trip. A node that cannot answer within this window is
/// reported stale for this aggregation.
pub const SCRAPE_TIMEOUT: Duration = Duration::from_secs(2);

/// A manifest server: versions the fleet's shard→node map and federates
/// fleet-wide metrics.
pub struct MetastoreServer {
    inner: EventLoop,
    state: Arc<MetastoreHandler>,
}

impl MetastoreServer {
    /// Binds `addr` and starts serving manifest and federation ops.
    pub fn bind<A: ToSocketAddrs>(addr: A, cfg: ServerConfig) -> std::io::Result<MetastoreServer> {
        let registry = Arc::new(MetricsRegistry::new());
        let state = Arc::new(MetastoreHandler {
            manifest: Mutex::new(None),
            registry: Arc::clone(&registry),
        });
        let handler: Arc<dyn RequestHandler> = Arc::clone(&state) as _;
        let inner = EventLoop::bind(addr, handler, cfg, &registry)?;
        Ok(MetastoreServer { inner, state })
    }

    /// The address the metastore is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr()
    }

    /// The manifest currently installed, if any (same view `GetManifest`
    /// serves).
    pub fn manifest(&self) -> Option<FleetManifest> {
        self.state.manifest.lock().clone()
    }

    /// The metastore's own metrics registry (event-loop counters plus
    /// federation scrape counters).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.state.registry
    }

    /// Counter snapshot.
    pub fn stats(&self) -> NetServerStats {
        self.inner.stats()
    }

    /// Drains in-flight requests, joins every thread, and returns the
    /// final counters.
    pub fn shutdown(self) -> NetServerStats {
        self.inner.shutdown()
    }
}

struct MetastoreHandler {
    manifest: Mutex<Option<FleetManifest>>,
    registry: Arc<MetricsRegistry>,
}

/// Scrapes one node's `Metrics` exposition within [`SCRAPE_TIMEOUT`].
fn scrape_node(addr: &str) -> Result<String, String> {
    let cfg = ClientConfig { connect_timeout: Some(SCRAPE_TIMEOUT), ..ClientConfig::default() };
    let client = GphClient::connect_with(addr, cfg).map_err(|e| e.to_string())?;
    client.submit_metrics().and_then(|t| t.wait_timeout(SCRAPE_TIMEOUT)).map_err(|e| e.to_string())
}

/// Fans a `Metrics` scrape out to every node group's primary (one
/// thread per node, so one stalled node costs one timeout, not a sum),
/// merges the fresh expositions with the metastore's own, and reports
/// failures as stale scrapes.
fn aggregate(manifest: Option<FleetManifest>, registry: &Arc<MetricsRegistry>) -> Response {
    let addrs: Vec<String> =
        manifest.iter().flat_map(|m| &m.nodes).filter_map(|n| n.addrs.first().cloned()).collect();
    let outcomes: Vec<Result<String, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> =
            addrs.iter().map(|addr| scope.spawn(move || scrape_node(addr))).collect();
        handles.into_iter().map(|h| h.join().expect("scrape threads never panic")).collect()
    });
    let mut nodes = Vec::with_capacity(addrs.len());
    for (addr, outcome) in addrs.into_iter().zip(outcomes) {
        registry.counter("gph_fed_scrapes_total", "Node scrapes attempted.", &[]).inc();
        match outcome {
            Ok(text) => nodes.push(NodeScrape { node: addr, error: None, text }),
            Err(error) => {
                registry
                    .counter(
                        "gph_fed_scrape_errors_total",
                        "Node scrapes that failed (node reported stale).",
                        &[("node", addr.as_str())],
                    )
                    .inc();
                nodes.push(NodeScrape { node: addr, error: Some(error), text: String::new() });
            }
        }
    }
    let own = registry.render();
    let mut texts: Vec<&str> = vec![&own];
    texts.extend(nodes.iter().filter(|s| s.error.is_none()).map(|s| s.text.as_str()));
    Response::AggregateMetrics { merged: merge_expositions(&texts), nodes }
}

impl RequestHandler for MetastoreHandler {
    fn handle(&self, req: Request) -> Reply {
        Reply::Now(match req {
            Request::Ping => Response::Pong,
            Request::Metrics => Response::Metrics { text: self.registry.render() },
            Request::GetManifest => Response::Manifest { manifest: self.manifest.lock().clone() },
            Request::AggregateMetrics => {
                // The fan-out blocks on node round trips; run it on the
                // resolver pool like any other slow reply.
                let manifest = self.manifest.lock().clone();
                let registry = Arc::clone(&self.registry);
                return Reply::Later(Box::new(move || aggregate(manifest, &registry)));
            }
            Request::PublishManifest { manifest } => {
                if let Err(msg) = manifest.validate() {
                    return Reply::Now(Response::Error(WireError::Unsupported(format!(
                        "invalid manifest: {msg}"
                    ))));
                }
                let mut current = self.manifest.lock();
                match current.as_ref() {
                    Some(kept) if manifest.version <= kept.version => {
                        Response::Error(WireError::ManifestStale { current: kept.version })
                    }
                    _ => {
                        let version = manifest.version;
                        *current = Some(manifest);
                        Response::ManifestAck { version }
                    }
                }
            }
            _ => Response::Error(WireError::Unsupported(
                "this server is a metastore; it serves ping, metrics, manifest, and \
                 federation ops"
                    .into(),
            )),
        })
    }
}

//! The `GPHN` wire protocol: a length-prefixed, versioned, CRC-32
//! checksummed binary frame format (see `crates/net/PROTOCOL.md` for the
//! normative spec).
//!
//! Every frame is:
//!
//! ```text
//! magic       [u8; 4] = b"GPHN"
//! version     u8      = 1
//! kind        u8        0 = request, 1 = response
//! opcode      u8
//! reserved    u8      = 0
//! request_id  u64     (LE; echoes the request on responses — pipelining)
//! payload_len u32     (LE; at most MAX_PAYLOAD)
//! crc32       u32     (LE; over version..payload_len ++ payload)
//! payload     [u8; payload_len]
//! ```
//!
//! The CRC covers every header byte after the magic plus the whole
//! payload, so any single-byte corruption anywhere in a frame is
//! detected (CRC-32 catches all burst errors up to 32 bits) and surfaces
//! as [`NetError::Protocol`] — never a panic, never silently wrong data.
//! Encoding is canonical: decoding a frame and re-encoding it reproduces
//! the input byte-for-byte, which the protocol property tests pin down.

use crate::NetError;
use gph_obs::QueryTrace;
use gph_serve::ServiceSnapshotStats;
use hamming_core::io::{ByteReader, Crc32};
use std::io::Read;

/// Frame magic.
pub const MAGIC: [u8; 4] = *b"GPHN";
/// Protocol version spoken by this build.
pub const VERSION: u8 = 1;
/// Fixed frame-header size in bytes.
pub const HEADER_LEN: usize = 24;
/// Ceiling on `payload_len` — rejects absurd lengths before allocating.
pub const MAX_PAYLOAD: u32 = 1 << 26;

/// Frame kind: request (client → server).
pub const KIND_REQUEST: u8 = 0;
/// Frame kind: response (server → client).
pub const KIND_RESPONSE: u8 = 1;

/// Op code for [`Request::Ping`] / [`Response::Pong`].
pub const OP_PING: u8 = 0x01;
/// Op code for [`Request::Search`] / [`Response::Search`].
pub const OP_SEARCH: u8 = 0x02;
/// Op code for [`Request::TopK`] / [`Response::TopK`].
pub const OP_TOPK: u8 = 0x03;
/// Op code for [`Request::BatchSearch`] / [`Response::Batch`].
pub const OP_BATCH: u8 = 0x04;
/// Op code for [`Request::Insert`].
pub const OP_INSERT: u8 = 0x05;
/// Op code for [`Request::Delete`].
pub const OP_DELETE: u8 = 0x06;
/// Op code for [`Request::Upsert`].
pub const OP_UPSERT: u8 = 0x07;
/// Op code for [`Request::Stats`] / [`Response::Stats`].
pub const OP_STATS: u8 = 0x08;
/// Op code for [`Response::Mutation`] (answers insert/delete/upsert).
pub const OP_MUTATION: u8 = 0x09;
/// Op code for [`Request::Metrics`] / [`Response::Metrics`].
pub const OP_METRICS: u8 = 0x0A;
/// Op code for [`Request::TracedSearch`] / [`Response::TracedSearch`].
pub const OP_TRACED_SEARCH: u8 = 0x0B;
/// Op code for [`Request::GetManifest`] / [`Response::Manifest`].
pub const OP_GET_MANIFEST: u8 = 0x0C;
/// Op code for [`Request::PublishManifest`] / [`Response::ManifestAck`].
pub const OP_PUBLISH_MANIFEST: u8 = 0x0D;
/// Op code for [`Request::AggregateMetrics`] /
/// [`Response::AggregateMetrics`].
pub const OP_AGGREGATE_METRICS: u8 = 0x0E;
/// Op code for [`Request::Health`] / [`Response::Health`].
pub const OP_HEALTH: u8 = 0x0F;
/// Op code for [`Request::SlowQueries`] / [`Response::SlowQueries`].
pub const OP_SLOW_QUERIES: u8 = 0x10;
/// Op code for [`Response::Error`].
pub const OP_ERROR: u8 = 0x7F;

/// Ceiling on the shard-slot count a decoded manifest may claim, mirroring
/// the `GPHM` snapshot guard: stops a corrupt count from driving a huge
/// allocation before validation.
pub const MAX_MANIFEST_SLOTS: u32 = 1 << 20;

/// One serving node group in a [`FleetManifest`]: the shard slots it owns
/// and the addresses serving them. `addrs[0]` is the primary (the only
/// address that accepts mutations); any further addresses are replicas
/// serving the identical slot set, which clients may use for idempotent
/// read retries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FleetNode {
    /// Shard slots this group owns (each in `0..n_shards`).
    pub slots: Vec<u32>,
    /// `host:port` addresses; index 0 is the primary.
    pub addrs: Vec<String>,
}

/// The versioned shard→node map a metastore serves: which node group owns
/// which shard slots of a fleet-wide `ShardedIndex`-compatible layout.
/// Record ids route to slots by the same stable id hash the index uses
/// (`ShardedIndex::shard_of`), so the manifest never has to enumerate ids.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FleetManifest {
    /// Publication version; the metastore only accepts strictly
    /// increasing versions.
    pub version: u64,
    /// Total shard slots; a valid manifest's nodes partition
    /// `0..n_shards` exactly.
    pub n_shards: u32,
    /// The node groups.
    pub nodes: Vec<FleetNode>,
}

impl FleetManifest {
    /// Checks structural invariants: at least one shard slot (bounded by
    /// [`MAX_MANIFEST_SLOTS`]), every node has at least one address, and
    /// the nodes' slot sets partition `0..n_shards` exactly — no orphaned
    /// and no doubly-owned slot.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_shards == 0 {
            return Err("manifest has zero shard slots".into());
        }
        if self.n_shards > MAX_MANIFEST_SLOTS {
            return Err(format!(
                "manifest claims {} shard slots, ceiling is {MAX_MANIFEST_SLOTS}",
                self.n_shards
            ));
        }
        let mut owner = vec![None::<usize>; self.n_shards as usize];
        for (ni, node) in self.nodes.iter().enumerate() {
            if node.addrs.is_empty() {
                return Err(format!("node {ni} has no addresses"));
            }
            for &slot in &node.slots {
                if slot >= self.n_shards {
                    return Err(format!(
                        "node {ni} claims slot {slot}, but there are only {} slots",
                        self.n_shards
                    ));
                }
                if let Some(prev) = owner[slot as usize] {
                    return Err(format!("slot {slot} owned by both node {prev} and node {ni}"));
                }
                owner[slot as usize] = Some(ni);
            }
        }
        if let Some(slot) = owner.iter().position(Option::is_none) {
            return Err(format!("slot {slot} has no owner"));
        }
        Ok(())
    }

    /// The index into [`FleetManifest::nodes`] of the group owning
    /// `slot`, or `None` for an out-of-range or orphaned slot.
    pub fn node_for_slot(&self, slot: u32) -> Option<usize> {
        self.nodes.iter().position(|n| n.slots.contains(&slot))
    }

    /// Serializes the manifest (the shared payload grammar of
    /// [`Request::PublishManifest`] and [`Response::Manifest`]).
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        put_u64(buf, self.version);
        put_u32(buf, self.n_shards);
        put_u32(buf, self.nodes.len() as u32);
        for node in &self.nodes {
            put_u32(buf, node.slots.len() as u32);
            for &slot in &node.slots {
                put_u32(buf, slot);
            }
            put_u32(buf, node.addrs.len() as u32);
            for addr in &node.addrs {
                put_str(buf, addr);
            }
        }
    }

    fn decode_from(r: &mut ByteReader<'_>) -> Result<FleetManifest, NetError> {
        let version = r.u64("manifest version")?;
        let n_shards = r.u32("manifest shard count")?;
        if n_shards > MAX_MANIFEST_SLOTS {
            return Err(proto_err(format!(
                "manifest claims {n_shards} shard slots, ceiling is {MAX_MANIFEST_SLOTS}"
            )));
        }
        // Each node costs at least 8 payload bytes (two u32 counts).
        let n_nodes = read_count(r, 8, "manifest node count")?;
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let n_slots = read_count(r, 4, "manifest slot count")?;
            let mut slots = Vec::with_capacity(n_slots);
            for _ in 0..n_slots {
                slots.push(r.u32("manifest slot")?);
            }
            // Each address costs at least its 4-byte length prefix.
            let n_addrs = read_count(r, 4, "manifest address count")?;
            let mut addrs = Vec::with_capacity(n_addrs);
            for _ in 0..n_addrs {
                addrs.push(read_str(r, "manifest address")?);
            }
            nodes.push(FleetNode { slots, addrs });
        }
        Ok(FleetManifest { version, n_shards, nodes })
    }
}

/// A client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Range search at threshold `tau`.
    Search {
        /// Hamming threshold.
        tau: u32,
        /// The query's raw words.
        query: Vec<u64>,
    },
    /// Top-k search.
    TopK {
        /// Result count.
        k: u32,
        /// The query's raw words.
        query: Vec<u64>,
    },
    /// A batch of range searches at a shared threshold (one job
    /// server-side, amortizing dispatch).
    BatchSearch {
        /// Hamming threshold shared by the batch.
        tau: u32,
        /// The queries' raw words (uniform width).
        queries: Vec<Vec<u64>>,
    },
    /// Insert `row` under `id` (errors if `id` is live).
    Insert {
        /// Record id.
        id: u32,
        /// The row's raw words.
        row: Vec<u64>,
    },
    /// Tombstone `id`.
    Delete {
        /// Record id.
        id: u32,
    },
    /// Insert-or-replace `row` under `id`.
    Upsert {
        /// Record id.
        id: u32,
        /// The row's raw words.
        row: Vec<u64>,
    },
    /// Fetch the server's index shape and service counters.
    Stats,
    /// Fetch the server's full Prometheus text exposition.
    Metrics,
    /// Range search that always runs traced and returns its own
    /// per-phase [`QueryTrace`] alongside the results.
    TracedSearch {
        /// Hamming threshold.
        tau: u32,
        /// The query's raw words.
        query: Vec<u64>,
        /// Distributed trace id the server stamps into the returned
        /// trace's hop context; `0` for an untracked local trace.
        trace_id: u64,
    },
    /// Fan-out scrape of every live node's `Metrics` exposition,
    /// merged (metastore servers only).
    AggregateMetrics,
    /// Cheap liveness + capacity probe, answered inline by the worker
    /// (never queued behind engine work).
    Health,
    /// Drain the server's slow-query ring: up to `max` most recent
    /// retained traces (`0` = all).
    SlowQueries {
        /// Ceiling on returned traces; `0` means no ceiling.
        max: u32,
    },
    /// Fetch the current fleet manifest (metastore servers only).
    GetManifest,
    /// Install a new fleet manifest (metastore servers only). Accepted
    /// only when its version strictly exceeds the current one; otherwise
    /// the server answers [`WireError::ManifestStale`].
    PublishManifest {
        /// The manifest to install.
        manifest: FleetManifest,
    },
}

/// One range-search outcome, used standalone ([`Response::Search`]) and
/// per-entry in [`Response::Batch`].
#[derive(Clone, Debug, PartialEq)]
pub enum SearchEntry {
    /// The search ran; matching ids ascending.
    Ids {
        /// Matching record ids.
        ids: Vec<u32>,
        /// Threshold actually executed.
        tau: u32,
        /// Set when admission degraded the query: the threshold asked for.
        degraded_from: Option<u32>,
        /// Whether the result came from the server's result cache.
        from_cache: bool,
    },
    /// Admission refused the query.
    Rejected {
        /// Estimated cost at the requested threshold.
        estimated_cost: f64,
        /// Budget it exceeded.
        budget: f64,
    },
    /// The server shed the query under load.
    Overloaded,
}

/// A mutation's outcome on the wire (admission rejections travel as
/// [`WireError::Rejected`] error frames instead).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireMutation {
    /// The mutation committed; `replaced` mirrors
    /// [`gph_serve::MutationOutcome::Applied`].
    Applied {
        /// Whether a live row was displaced or removed.
        replaced: bool,
    },
    /// A delete named an id that was not live.
    NotFound,
}

/// A node's answer to the `Health` probe: enough for a fleet client to
/// route around a saturated or restarted replica without waiting for a
/// timeout.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeHealth {
    /// Fleet shard slots this node was configured to own (empty for a
    /// standalone server that was never told its slots).
    pub slots: Vec<u32>,
    /// Build/restore generation the operator stamped on the service.
    pub generation: u64,
    /// Live rows in the node's index.
    pub rows: u64,
    /// Jobs queued ahead of the engine workers.
    pub queue_depth: u32,
    /// Configured queue capacity.
    pub queue_capacity: u32,
    /// Whether the node considers itself degraded (worker queue
    /// saturated); healthy fleet clients demote such replicas.
    pub degraded: bool,
}

/// One node's slice of an `AggregateMetrics` fan-out: either a fresh
/// exposition or a stale marker with the scrape error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeScrape {
    /// The address the metastore scraped (the node's primary).
    pub node: String,
    /// `Some` when the scrape failed — the node is reported stale
    /// rather than failing the whole aggregation.
    pub error: Option<String>,
    /// The node's Prometheus exposition; empty when stale.
    pub text: String,
}

/// A typed error frame.
#[derive(Clone, Debug, PartialEq)]
pub enum WireError {
    /// The peer's frame could not be decoded; the connection closes.
    Malformed(String),
    /// The request is structurally valid but not serveable as asked
    /// (e.g. a query whose word count does not match the index).
    Unsupported(String),
    /// Admission control refused the request.
    Rejected {
        /// Estimated cost of the request.
        estimated_cost: f64,
        /// Budget it exceeded.
        budget: f64,
    },
    /// The server shed the request under load.
    Overloaded,
    /// The engine failed the request (e.g. duplicate insert id).
    Engine(String),
    /// The server is draining and no longer accepts work.
    ShuttingDown,
    /// A published manifest's version did not exceed the current one.
    ManifestStale {
        /// The version the metastore is keeping.
        current: u64,
    },
}

impl WireError {
    fn code(&self) -> u16 {
        match self {
            WireError::Malformed(_) => 1,
            WireError::Unsupported(_) => 2,
            WireError::Rejected { .. } => 3,
            WireError::Overloaded => 4,
            WireError::Engine(_) => 5,
            WireError::ShuttingDown => 6,
            WireError::ManifestStale { .. } => 7,
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Malformed(m) => write!(f, "malformed frame: {m}"),
            WireError::Unsupported(m) => write!(f, "unsupported request: {m}"),
            WireError::Rejected { estimated_cost, budget } => {
                write!(f, "admission rejected: cost {estimated_cost:.1} over budget {budget:.1}")
            }
            WireError::Overloaded => write!(f, "server overloaded"),
            WireError::Engine(m) => write!(f, "engine error: {m}"),
            WireError::ShuttingDown => write!(f, "server shutting down"),
            WireError::ManifestStale { current } => {
                write!(f, "manifest stale: the metastore is at version {current}")
            }
        }
    }
}

/// A server response.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Search`].
    Search(SearchEntry),
    /// Answer to [`Request::TopK`]: `(id, distance)` ascending by
    /// `(distance, id)`.
    TopK {
        /// The hits.
        hits: Vec<(u32, u32)>,
        /// Set when admission degraded the query: the escalation cap the
        /// search actually ran.
        degraded_cap: Option<u32>,
        /// Whether the result came from the server's result cache.
        from_cache: bool,
    },
    /// Answer to [`Request::BatchSearch`], in submission order.
    Batch(Vec<SearchEntry>),
    /// Answer to insert/delete/upsert.
    Mutation(WireMutation),
    /// Answer to [`Request::Stats`].
    Stats {
        /// Live rows in the index.
        rows: u64,
        /// Index dimensionality.
        dim: u32,
        /// The index's maximum supported threshold.
        tau_max: u32,
        /// Shard count.
        shards: u32,
        /// Service + cache + admission counters.
        stats: ServiceSnapshotStats,
    },
    /// Answer to [`Request::Metrics`]: the Prometheus text exposition.
    Metrics {
        /// Exposition-format metrics text.
        text: String,
    },
    /// Answer to [`Request::TracedSearch`].
    TracedSearch {
        /// The search outcome, as for [`Response::Search`].
        entry: SearchEntry,
        /// The query's own per-phase trace; present exactly when the
        /// search reached the engine ([`SearchEntry::Ids`]).
        trace: Option<QueryTrace>,
    },
    /// Answer to [`Request::AggregateMetrics`]: the fleet-merged
    /// exposition plus every node's individual scrape outcome.
    AggregateMetrics {
        /// [`gph_obs::merge_expositions`] over the metastore's own
        /// registry and every fresh node scrape.
        merged: String,
        /// Per-node scrape outcomes, in manifest order; stale nodes
        /// carry their error instead of failing the aggregation.
        nodes: Vec<NodeScrape>,
    },
    /// Answer to [`Request::Health`].
    Health(NodeHealth),
    /// Answer to [`Request::SlowQueries`]: the slow-query ring's
    /// retained traces, most recent last.
    SlowQueries {
        /// The drained traces.
        traces: Vec<QueryTrace>,
    },
    /// Answer to [`Request::GetManifest`].
    Manifest {
        /// The current manifest; `None` before the first publish.
        manifest: Option<FleetManifest>,
    },
    /// Answer to an accepted [`Request::PublishManifest`].
    ManifestAck {
        /// The version now current.
        version: u64,
    },
    /// A typed error.
    Error(WireError),
}

/// A decoded frame body: the kind byte selects which grammar the payload
/// was parsed under.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// `kind == KIND_REQUEST`.
    Request(Request),
    /// `kind == KIND_RESPONSE`.
    Response(Response),
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_words(buf: &mut Vec<u8>, words: &[u64]) {
    for &w in words {
        put_u64(buf, w);
    }
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn request_opcode(req: &Request) -> u8 {
    match req {
        Request::Ping => OP_PING,
        Request::Search { .. } => OP_SEARCH,
        Request::TopK { .. } => OP_TOPK,
        Request::BatchSearch { .. } => OP_BATCH,
        Request::Insert { .. } => OP_INSERT,
        Request::Delete { .. } => OP_DELETE,
        Request::Upsert { .. } => OP_UPSERT,
        Request::Stats => OP_STATS,
        Request::Metrics => OP_METRICS,
        Request::TracedSearch { .. } => OP_TRACED_SEARCH,
        Request::AggregateMetrics => OP_AGGREGATE_METRICS,
        Request::Health => OP_HEALTH,
        Request::SlowQueries { .. } => OP_SLOW_QUERIES,
        Request::GetManifest => OP_GET_MANIFEST,
        Request::PublishManifest { .. } => OP_PUBLISH_MANIFEST,
    }
}

fn response_opcode(resp: &Response) -> u8 {
    match resp {
        Response::Pong => OP_PING,
        Response::Search(_) => OP_SEARCH,
        Response::TopK { .. } => OP_TOPK,
        Response::Batch(_) => OP_BATCH,
        Response::Mutation(_) => OP_MUTATION,
        Response::Stats { .. } => OP_STATS,
        Response::Metrics { .. } => OP_METRICS,
        Response::TracedSearch { .. } => OP_TRACED_SEARCH,
        Response::AggregateMetrics { .. } => OP_AGGREGATE_METRICS,
        Response::Health(_) => OP_HEALTH,
        Response::SlowQueries { .. } => OP_SLOW_QUERIES,
        Response::Manifest { .. } => OP_GET_MANIFEST,
        Response::ManifestAck { .. } => OP_PUBLISH_MANIFEST,
        Response::Error(_) => OP_ERROR,
    }
}

fn encode_request_payload(req: &Request, buf: &mut Vec<u8>) {
    match req {
        Request::Ping
        | Request::Stats
        | Request::Metrics
        | Request::GetManifest
        | Request::AggregateMetrics
        | Request::Health => {}
        Request::PublishManifest { manifest } => manifest.encode_into(buf),
        Request::SlowQueries { max } => put_u32(buf, *max),
        Request::Search { tau, query } => {
            put_u32(buf, *tau);
            put_u32(buf, query.len() as u32);
            put_words(buf, query);
        }
        Request::TracedSearch { tau, query, trace_id } => {
            put_u32(buf, *tau);
            put_u64(buf, *trace_id);
            put_u32(buf, query.len() as u32);
            put_words(buf, query);
        }
        Request::TopK { k, query } => {
            put_u32(buf, *k);
            put_u32(buf, query.len() as u32);
            put_words(buf, query);
        }
        Request::BatchSearch { tau, queries } => {
            // The wire format carries one width for the whole batch;
            // mixed widths would re-chunk into different queries on the
            // far side (the client API validates this before encoding).
            let n_words = queries.first().map_or(0, Vec::len);
            debug_assert!(
                queries.iter().all(|q| q.len() == n_words && !q.is_empty()),
                "batch queries must share one nonzero word count"
            );
            put_u32(buf, *tau);
            put_u32(buf, queries.len() as u32);
            put_u32(buf, n_words as u32);
            for q in queries {
                put_words(buf, q);
            }
        }
        Request::Insert { id, row } | Request::Upsert { id, row } => {
            put_u32(buf, *id);
            put_u32(buf, row.len() as u32);
            put_words(buf, row);
        }
        Request::Delete { id } => put_u32(buf, *id),
    }
}

fn encode_search_entry(entry: &SearchEntry, buf: &mut Vec<u8>) {
    match entry {
        SearchEntry::Ids { ids, tau, degraded_from, from_cache } => {
            buf.push(0);
            let flags = u8::from(*from_cache) | (u8::from(degraded_from.is_some()) << 1);
            buf.push(flags);
            put_u32(buf, *tau);
            if let Some(from) = degraded_from {
                put_u32(buf, *from);
            }
            put_u32(buf, ids.len() as u32);
            for &id in ids {
                put_u32(buf, id);
            }
        }
        SearchEntry::Rejected { estimated_cost, budget } => {
            buf.push(1);
            put_f64(buf, *estimated_cost);
            put_f64(buf, *budget);
        }
        SearchEntry::Overloaded => buf.push(2),
    }
}

fn encode_response_payload(resp: &Response, buf: &mut Vec<u8>) {
    match resp {
        Response::Pong => {}
        Response::Search(entry) => encode_search_entry(entry, buf),
        Response::TopK { hits, degraded_cap, from_cache } => {
            let flags = u8::from(*from_cache) | (u8::from(degraded_cap.is_some()) << 1);
            buf.push(flags);
            if let Some(cap) = degraded_cap {
                put_u32(buf, *cap);
            }
            put_u32(buf, hits.len() as u32);
            for &(id, dist) in hits {
                put_u32(buf, id);
                put_u32(buf, dist);
            }
        }
        Response::Batch(entries) => {
            put_u32(buf, entries.len() as u32);
            for entry in entries {
                encode_search_entry(entry, buf);
            }
        }
        Response::Mutation(m) => match m {
            WireMutation::Applied { replaced } => {
                buf.push(0);
                buf.push(u8::from(*replaced));
            }
            WireMutation::NotFound => buf.push(1),
        },
        Response::Stats { rows, dim, tau_max, shards, stats } => {
            put_u64(buf, *rows);
            put_u32(buf, *dim);
            put_u32(buf, *tau_max);
            put_u32(buf, *shards);
            stats.encode_into(buf);
        }
        Response::Metrics { text } => put_str(buf, text),
        Response::AggregateMetrics { merged, nodes } => {
            put_str(buf, merged);
            put_u32(buf, nodes.len() as u32);
            for scrape in nodes {
                put_str(buf, &scrape.node);
                match &scrape.error {
                    Some(e) => {
                        buf.push(1);
                        put_str(buf, e);
                    }
                    None => buf.push(0),
                }
                put_str(buf, &scrape.text);
            }
        }
        Response::Health(h) => {
            put_u32(buf, h.slots.len() as u32);
            for &slot in &h.slots {
                put_u32(buf, slot);
            }
            put_u64(buf, h.generation);
            put_u64(buf, h.rows);
            put_u32(buf, h.queue_depth);
            put_u32(buf, h.queue_capacity);
            buf.push(u8::from(h.degraded));
        }
        Response::SlowQueries { traces } => {
            put_u32(buf, traces.len() as u32);
            for t in traces {
                t.encode_into(buf);
            }
        }
        Response::Manifest { manifest } => match manifest {
            Some(m) => {
                buf.push(1);
                m.encode_into(buf);
            }
            None => buf.push(0),
        },
        Response::ManifestAck { version } => put_u64(buf, *version),
        Response::TracedSearch { entry, trace } => {
            encode_search_entry(entry, buf);
            match trace {
                Some(t) => {
                    buf.push(1);
                    t.encode_into(buf);
                }
                None => buf.push(0),
            }
        }
        Response::Error(err) => {
            buf.extend_from_slice(&err.code().to_le_bytes());
            match err {
                WireError::Malformed(m) | WireError::Unsupported(m) | WireError::Engine(m) => {
                    put_str(buf, m)
                }
                WireError::Rejected { estimated_cost, budget } => {
                    put_f64(buf, *estimated_cost);
                    put_f64(buf, *budget);
                }
                WireError::Overloaded | WireError::ShuttingDown => {}
                WireError::ManifestStale { current } => put_u64(buf, *current),
            }
        }
    }
}

fn encode_frame(kind: u8, opcode: u8, request_id: u64, payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() <= MAX_PAYLOAD as usize, "oversized frame payload");
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    buf.extend_from_slice(&MAGIC);
    buf.push(VERSION);
    buf.push(kind);
    buf.push(opcode);
    buf.push(0); // reserved
    put_u64(&mut buf, request_id);
    put_u32(&mut buf, payload.len() as u32);
    let crc = Crc32::new().update(&buf[4..]).update(payload).finish();
    put_u32(&mut buf, crc);
    buf.extend_from_slice(payload);
    buf
}

/// Encodes a request frame.
pub fn encode_request(request_id: u64, req: &Request) -> Vec<u8> {
    let mut payload = Vec::new();
    encode_request_payload(req, &mut payload);
    encode_frame(KIND_REQUEST, request_opcode(req), request_id, &payload)
}

/// Encodes a response frame.
pub fn encode_response(request_id: u64, resp: &Response) -> Vec<u8> {
    let mut payload = Vec::new();
    encode_response_payload(resp, &mut payload);
    encode_frame(KIND_RESPONSE, response_opcode(resp), request_id, &payload)
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

fn proto_err(msg: impl Into<String>) -> NetError {
    NetError::Protocol(msg.into())
}

fn read_words(r: &mut ByteReader<'_>, n: usize, what: &str) -> Result<Vec<u64>, NetError> {
    Ok(r.u64s(n, what)?)
}

/// Reads a u32 item count and validates that at least `per_item` bytes
/// per item remain — the guard that stops a corrupt count from driving a
/// huge allocation.
fn read_count(r: &mut ByteReader<'_>, per_item: usize, what: &str) -> Result<usize, NetError> {
    let n = r.u32(what)? as usize;
    if n.checked_mul(per_item).is_none_or(|need| need > r.remaining()) {
        return Err(proto_err(format!(
            "{what}: {n} items exceed the {} remaining bytes",
            r.remaining()
        )));
    }
    Ok(n)
}

fn read_str(r: &mut ByteReader<'_>, what: &str) -> Result<String, NetError> {
    let len = read_count(r, 1, what)?;
    let bytes = r.bytes(len, what)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| proto_err(format!("{what}: invalid utf-8")))
}

fn decode_request_payload(opcode: u8, payload: &[u8]) -> Result<Request, NetError> {
    let mut r = ByteReader::new(payload);
    let req = match opcode {
        OP_PING => Request::Ping,
        OP_STATS => Request::Stats,
        OP_METRICS => Request::Metrics,
        OP_SEARCH => {
            let tau = r.u32("search tau")?;
            let n = r.u32("search words")? as usize;
            Request::Search { tau, query: read_words(&mut r, n, "search query")? }
        }
        OP_TRACED_SEARCH => {
            let tau = r.u32("search tau")?;
            let trace_id = r.u64("search trace id")?;
            let n = r.u32("search words")? as usize;
            Request::TracedSearch { tau, query: read_words(&mut r, n, "search query")?, trace_id }
        }
        OP_AGGREGATE_METRICS => Request::AggregateMetrics,
        OP_HEALTH => Request::Health,
        OP_SLOW_QUERIES => Request::SlowQueries { max: r.u32("slow query ceiling")? },
        OP_TOPK => {
            let k = r.u32("topk k")?;
            let n = r.u32("topk words")? as usize;
            Request::TopK { k, query: read_words(&mut r, n, "topk query")? }
        }
        OP_BATCH => {
            let tau = r.u32("batch tau")?;
            let n_queries = r.u32("batch size")? as usize;
            let n_words = r.u32("batch words")? as usize;
            if n_queries == 0 && n_words != 0 {
                return Err(proto_err("empty batch with nonzero word count"));
            }
            if n_queries != 0 && n_words == 0 {
                return Err(proto_err("batch queries must have at least one word"));
            }
            // Bound the outer allocation by the bytes actually present.
            if n_queries > r.remaining() / n_words.saturating_mul(8).max(1) {
                return Err(proto_err(format!(
                    "batch of {n_queries}x{n_words} words exceeds the {} remaining bytes",
                    r.remaining()
                )));
            }
            let mut queries = Vec::with_capacity(n_queries);
            for _ in 0..n_queries {
                queries.push(read_words(&mut r, n_words, "batch query")?);
            }
            Request::BatchSearch { tau, queries }
        }
        OP_INSERT | OP_UPSERT => {
            let id = r.u32("mutation id")?;
            let n = r.u32("mutation words")? as usize;
            let row = read_words(&mut r, n, "mutation row")?;
            if opcode == OP_INSERT {
                Request::Insert { id, row }
            } else {
                Request::Upsert { id, row }
            }
        }
        OP_DELETE => Request::Delete { id: r.u32("delete id")? },
        OP_GET_MANIFEST => Request::GetManifest,
        OP_PUBLISH_MANIFEST => {
            Request::PublishManifest { manifest: FleetManifest::decode_from(&mut r)? }
        }
        other => return Err(proto_err(format!("unknown request opcode {other:#04x}"))),
    };
    r.finish("request payload")?;
    Ok(req)
}

fn decode_search_entry(r: &mut ByteReader<'_>) -> Result<SearchEntry, NetError> {
    match r.u8("entry tag")? {
        0 => {
            let flags = r.u8("entry flags")?;
            if flags & !0b11 != 0 {
                return Err(proto_err(format!("unknown entry flags {flags:#04x}")));
            }
            let from_cache = flags & 1 != 0;
            let tau = r.u32("entry tau")?;
            let degraded_from =
                if flags & 2 != 0 { Some(r.u32("entry degraded tau")?) } else { None };
            let n = read_count(r, 4, "entry id count")?;
            let mut ids = Vec::with_capacity(n);
            for _ in 0..n {
                ids.push(r.u32("entry id")?);
            }
            Ok(SearchEntry::Ids { ids, tau, degraded_from, from_cache })
        }
        1 => Ok(SearchEntry::Rejected {
            estimated_cost: r.f64("entry cost")?,
            budget: r.f64("entry budget")?,
        }),
        2 => Ok(SearchEntry::Overloaded),
        other => Err(proto_err(format!("unknown search entry tag {other}"))),
    }
}

fn decode_response_payload(opcode: u8, payload: &[u8]) -> Result<Response, NetError> {
    let mut r = ByteReader::new(payload);
    let resp = match opcode {
        OP_PING => Response::Pong,
        OP_SEARCH => Response::Search(decode_search_entry(&mut r)?),
        OP_TOPK => {
            let flags = r.u8("topk flags")?;
            if flags & !0b11 != 0 {
                return Err(proto_err(format!("unknown topk flags {flags:#04x}")));
            }
            let from_cache = flags & 1 != 0;
            let degraded_cap = if flags & 2 != 0 { Some(r.u32("topk cap")?) } else { None };
            let n = read_count(&mut r, 8, "topk hit count")?;
            let mut hits = Vec::with_capacity(n);
            for _ in 0..n {
                let id = r.u32("topk id")?;
                let dist = r.u32("topk distance")?;
                hits.push((id, dist));
            }
            Response::TopK { hits, degraded_cap, from_cache }
        }
        OP_BATCH => {
            let n = read_count(&mut r, 1, "batch entry count")?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push(decode_search_entry(&mut r)?);
            }
            Response::Batch(entries)
        }
        OP_MUTATION => match r.u8("mutation tag")? {
            0 => {
                let replaced = match r.u8("mutation replaced")? {
                    0 => false,
                    1 => true,
                    other => return Err(proto_err(format!("bad replaced byte {other}"))),
                };
                Response::Mutation(WireMutation::Applied { replaced })
            }
            1 => Response::Mutation(WireMutation::NotFound),
            other => return Err(proto_err(format!("unknown mutation tag {other}"))),
        },
        OP_STATS => Response::Stats {
            rows: r.u64("stats rows")?,
            dim: r.u32("stats dim")?,
            tau_max: r.u32("stats tau_max")?,
            shards: r.u32("stats shards")?,
            stats: ServiceSnapshotStats::decode_from(&mut r)?,
        },
        OP_METRICS => Response::Metrics { text: read_str(&mut r, "metrics text")? },
        OP_AGGREGATE_METRICS => {
            let merged = read_str(&mut r, "merged exposition")?;
            // Each scrape costs at least three length/tag prefixes.
            let n = read_count(&mut r, 9, "scrape count")?;
            let mut nodes = Vec::with_capacity(n);
            for _ in 0..n {
                let node = read_str(&mut r, "scrape node")?;
                let error = match r.u8("scrape tag")? {
                    0 => None,
                    1 => Some(read_str(&mut r, "scrape error")?),
                    other => return Err(proto_err(format!("unknown scrape tag {other}"))),
                };
                let text = read_str(&mut r, "scrape text")?;
                nodes.push(NodeScrape { node, error, text });
            }
            Response::AggregateMetrics { merged, nodes }
        }
        OP_HEALTH => {
            let n = read_count(&mut r, 4, "health slot count")?;
            let mut slots = Vec::with_capacity(n);
            for _ in 0..n {
                slots.push(r.u32("health slot")?);
            }
            let generation = r.u64("health generation")?;
            let rows = r.u64("health rows")?;
            let queue_depth = r.u32("health queue depth")?;
            let queue_capacity = r.u32("health queue capacity")?;
            let degraded = match r.u8("health degraded")? {
                0 => false,
                1 => true,
                other => return Err(proto_err(format!("bad degraded byte {other}"))),
            };
            Response::Health(NodeHealth {
                slots,
                generation,
                rows,
                queue_depth,
                queue_capacity,
                degraded,
            })
        }
        OP_SLOW_QUERIES => {
            // Each trace costs at least its version byte plus the v2
            // context and v1 header fields.
            let n = read_count(&mut r, 16, "slow trace count")?;
            let mut traces = Vec::with_capacity(n);
            for _ in 0..n {
                traces.push(QueryTrace::decode_from(&mut r)?);
            }
            Response::SlowQueries { traces }
        }
        OP_GET_MANIFEST => {
            let manifest = match r.u8("manifest tag")? {
                0 => None,
                1 => Some(FleetManifest::decode_from(&mut r)?),
                other => return Err(proto_err(format!("unknown manifest tag {other}"))),
            };
            Response::Manifest { manifest }
        }
        OP_PUBLISH_MANIFEST => Response::ManifestAck { version: r.u64("ack version")? },
        OP_TRACED_SEARCH => {
            let entry = decode_search_entry(&mut r)?;
            let trace = match r.u8("trace tag")? {
                0 => None,
                1 => Some(QueryTrace::decode_from(&mut r)?),
                other => return Err(proto_err(format!("unknown trace tag {other}"))),
            };
            Response::TracedSearch { entry, trace }
        }
        OP_ERROR => {
            let code = u16::from_le_bytes([r.u8("error code")?, r.u8("error code")?]);
            let err = match code {
                1 => WireError::Malformed(read_str(&mut r, "error message")?),
                2 => WireError::Unsupported(read_str(&mut r, "error message")?),
                3 => WireError::Rejected {
                    estimated_cost: r.f64("error cost")?,
                    budget: r.f64("error budget")?,
                },
                4 => WireError::Overloaded,
                5 => WireError::Engine(read_str(&mut r, "error message")?),
                6 => WireError::ShuttingDown,
                7 => WireError::ManifestStale { current: r.u64("error version")? },
                other => return Err(proto_err(format!("unknown error code {other}"))),
            };
            Response::Error(err)
        }
        other => return Err(proto_err(format!("unknown response opcode {other:#04x}"))),
    };
    r.finish("response payload")?;
    Ok(resp)
}

fn parse_message(kind: u8, opcode: u8, payload: &[u8]) -> Result<Message, NetError> {
    match kind {
        KIND_REQUEST => Ok(Message::Request(decode_request_payload(opcode, payload)?)),
        KIND_RESPONSE => Ok(Message::Response(decode_response_payload(opcode, payload)?)),
        other => Err(proto_err(format!("unknown frame kind {other}"))),
    }
}

/// Validates the fixed fields of a 24-byte header (after the CRC has
/// been verified by the caller's chosen path).
fn check_header(version: u8, reserved: u8, payload_len: u32) -> Result<(), NetError> {
    if version != VERSION {
        return Err(proto_err(format!(
            "unsupported protocol version {version} (this build speaks {VERSION})"
        )));
    }
    if reserved != 0 {
        return Err(proto_err(format!("reserved header byte is {reserved:#04x}, want 0")));
    }
    if payload_len > MAX_PAYLOAD {
        return Err(proto_err(format!("payload of {payload_len} bytes exceeds {MAX_PAYLOAD}")));
    }
    Ok(())
}

/// Sizes the frame at the front of `buf` without decoding it, for
/// incremental parsing off a nonblocking read buffer: `Ok(None)` means
/// the header is still incomplete, `Ok(Some(n))` that the frame occupies
/// the first `n` bytes (which may not all have arrived yet). Bad magic
/// and oversized payloads fail here, before any allocation, so a
/// desynced peer is detected from the first header.
pub fn frame_len(buf: &[u8]) -> Result<Option<usize>, NetError> {
    if !buf.is_empty() && buf[..buf.len().min(4)] != MAGIC[..buf.len().min(4)] {
        return Err(proto_err(format!("bad frame magic {:?}", &buf[..buf.len().min(4)])));
    }
    if buf.len() < HEADER_LEN {
        return Ok(None);
    }
    let payload_len = u32::from_le_bytes(buf[16..20].try_into().expect("4 bytes"));
    if payload_len > MAX_PAYLOAD {
        return Err(proto_err(format!("payload of {payload_len} bytes exceeds {MAX_PAYLOAD}")));
    }
    Ok(Some(HEADER_LEN + payload_len as usize))
}

/// Decodes exactly one frame from `bytes` (trailing bytes are an error).
/// Returns the request id and the parsed body.
pub fn decode_frame(bytes: &[u8]) -> Result<(u64, Message), NetError> {
    if bytes.len() < HEADER_LEN {
        return Err(proto_err(format!(
            "frame header: need {HEADER_LEN} bytes, got {}",
            bytes.len()
        )));
    }
    if bytes[..4] != MAGIC {
        return Err(proto_err(format!("bad frame magic {:?}", &bytes[..4])));
    }
    let mut r = ByteReader::new(&bytes[4..]);
    let version = r.u8("frame version")?;
    let kind = r.u8("frame kind")?;
    let opcode = r.u8("frame opcode")?;
    let reserved = r.u8("frame reserved")?;
    let request_id = r.u64("frame request id")?;
    let payload_len = r.u32("frame payload length")?;
    let crc = r.u32("frame crc")?;
    // CRC first: a corrupted length or opcode must read as corruption,
    // not as a confusing secondary error.
    let got = Crc32::new().update(&bytes[4..20]).update(&bytes[HEADER_LEN..]).finish();
    if got != crc {
        return Err(proto_err(format!("frame checksum mismatch ({got:#010x} != {crc:#010x})")));
    }
    check_header(version, reserved, payload_len)?;
    let payload = r.bytes(payload_len as usize, "frame payload")?;
    r.finish("frame")?;
    Ok((request_id, parse_message(kind, opcode, payload)?))
}

/// Reads until `buf` is full. `Ok(false)` means EOF landed exactly on a
/// frame boundary (nothing read); EOF mid-buffer is an error.
fn read_full<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<bool, NetError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(proto_err(format!(
                    "connection closed mid-frame ({filled}/{} bytes)",
                    buf.len()
                )));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    Ok(true)
}

/// Reads one frame from a stream. Returns `Ok(None)` on a clean EOF at a
/// frame boundary; mid-frame EOF, corruption, and oversized payloads are
/// [`NetError`]s. On success also returns the frame's total wire size.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<(u64, Message, usize)>, NetError> {
    let mut header = [0u8; HEADER_LEN];
    if !read_full(r, &mut header)? {
        return Ok(None);
    }
    if header[..4] != MAGIC {
        return Err(proto_err(format!("bad frame magic {:?}", &header[..4])));
    }
    let version = header[4];
    let kind = header[5];
    let opcode = header[6];
    let reserved = header[7];
    let request_id = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    let payload_len = u32::from_le_bytes(header[16..20].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(header[20..24].try_into().expect("4 bytes"));
    // The length ceiling must hold before the allocation; version/reserved
    // checks wait for the CRC so corruption reports as corruption.
    if payload_len > MAX_PAYLOAD {
        return Err(proto_err(format!("payload of {payload_len} bytes exceeds {MAX_PAYLOAD}")));
    }
    let mut payload = vec![0u8; payload_len as usize];
    if !read_full(r, &mut payload)? && payload_len > 0 {
        return Err(proto_err("connection closed before the frame payload"));
    }
    let got = Crc32::new().update(&header[4..20]).update(&payload).finish();
    if got != crc {
        return Err(proto_err(format!("frame checksum mismatch ({got:#010x} != {crc:#010x})")));
    }
    check_header(version, reserved, payload_len)?;
    let message = parse_message(kind, opcode, &payload)?;
    Ok(Some((request_id, message, HEADER_LEN + payload.len())))
}

/// The frame checksum: CRC-32 over the header bytes after the magic
/// (`version..payload_len`) followed by the payload. Public so tests and
/// tools can forge or verify frames without re-deriving the coverage.
pub fn frame_crc(header_tail: &[u8], payload: &[u8]) -> u32 {
    Crc32::new().update(header_tail).update(payload).finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(id: u64, req: Request) {
        let bytes = encode_request(id, &req);
        let (got_id, msg) = decode_frame(&bytes).expect("decode");
        assert_eq!(got_id, id);
        assert_eq!(msg, Message::Request(req.clone()));
        // Canonical: re-encoding reproduces the bytes.
        assert_eq!(encode_request(id, &req), bytes);
    }

    fn roundtrip_response(id: u64, resp: Response) {
        let bytes = encode_response(id, &resp);
        let (got_id, msg) = decode_frame(&bytes).expect("decode");
        assert_eq!(got_id, id);
        assert_eq!(msg, Message::Response(resp.clone()));
        assert_eq!(encode_response(id, &resp), bytes);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_request(0, Request::Ping);
        roundtrip_request(7, Request::Stats);
        roundtrip_request(1, Request::Search { tau: 8, query: vec![0xDEAD, 0xBEEF] });
        roundtrip_request(2, Request::TopK { k: 5, query: vec![1, 2, 3] });
        roundtrip_request(
            3,
            Request::BatchSearch { tau: 4, queries: vec![vec![1, 2], vec![3, 4], vec![5, 6]] },
        );
        roundtrip_request(4, Request::BatchSearch { tau: 4, queries: vec![] });
        roundtrip_request(5, Request::Insert { id: 42, row: vec![9] });
        roundtrip_request(6, Request::Delete { id: 42 });
        roundtrip_request(u64::MAX, Request::Upsert { id: 0, row: vec![] });
        roundtrip_request(8, Request::Metrics);
        roundtrip_request(
            9,
            Request::TracedSearch { tau: 8, query: vec![0xDEAD, 0xBEEF], trace_id: 0xFACADE },
        );
        roundtrip_request(10, Request::GetManifest);
        roundtrip_request(11, Request::PublishManifest { manifest: sample_manifest() });
        roundtrip_request(12, Request::AggregateMetrics);
        roundtrip_request(13, Request::Health);
        roundtrip_request(14, Request::SlowQueries { max: 0 });
        roundtrip_request(15, Request::SlowQueries { max: 32 });
    }

    fn sample_manifest() -> FleetManifest {
        FleetManifest {
            version: 7,
            n_shards: 4,
            nodes: vec![
                FleetNode {
                    slots: vec![0, 2],
                    addrs: vec!["127.0.0.1:9001".into(), "127.0.0.1:9002".into()],
                },
                FleetNode { slots: vec![1, 3], addrs: vec!["127.0.0.1:9003".into()] },
            ],
        }
    }

    #[test]
    fn manifest_frames_roundtrip() {
        roundtrip_response(20, Response::Manifest { manifest: None });
        roundtrip_response(21, Response::Manifest { manifest: Some(sample_manifest()) });
        roundtrip_response(22, Response::ManifestAck { version: u64::MAX });
        roundtrip_response(23, Response::Error(WireError::ManifestStale { current: 9 }));
    }

    #[test]
    fn manifest_validation_pins_exact_partition() {
        let m = sample_manifest();
        assert!(m.validate().is_ok());
        assert_eq!(m.node_for_slot(0), Some(0));
        assert_eq!(m.node_for_slot(3), Some(1));
        assert_eq!(m.node_for_slot(4), None);

        let mut orphaned = m.clone();
        orphaned.nodes[1].slots = vec![1];
        assert!(orphaned.validate().unwrap_err().contains("no owner"));

        let mut doubled = m.clone();
        doubled.nodes[1].slots = vec![1, 3, 0];
        assert!(doubled.validate().unwrap_err().contains("owned by both"));

        let mut out_of_range = m.clone();
        out_of_range.nodes[1].slots = vec![1, 9];
        assert!(out_of_range.validate().is_err());

        let mut addressless = m.clone();
        addressless.nodes[0].addrs.clear();
        assert!(addressless.validate().unwrap_err().contains("no addresses"));

        let mut empty = m;
        empty.n_shards = 0;
        empty.nodes.clear();
        assert!(empty.validate().is_err());
    }

    #[test]
    fn frame_len_sizes_partial_buffers() {
        let frame = encode_request(5, &Request::Search { tau: 2, query: vec![1, 2] });
        assert_eq!(frame_len(&[]).unwrap(), None);
        for cut in 1..HEADER_LEN {
            assert_eq!(frame_len(&frame[..cut]).unwrap(), None, "cut={cut}");
        }
        assert_eq!(frame_len(&frame).unwrap(), Some(frame.len()));
        // The header alone sizes the frame even before the payload lands.
        assert_eq!(frame_len(&frame[..HEADER_LEN]).unwrap(), Some(frame.len()));
        // Bad magic fails from the very first byte.
        assert!(frame_len(b"X").is_err());
        assert!(frame_len(b"GPHX").is_err());
        // Oversized payload claims fail before allocation.
        let mut big = frame;
        big[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(frame_len(&big).is_err());
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_response(0, Response::Pong);
        roundtrip_response(
            1,
            Response::Search(SearchEntry::Ids {
                ids: vec![1, 5, 9],
                tau: 6,
                degraded_from: None,
                from_cache: false,
            }),
        );
        roundtrip_response(
            2,
            Response::Search(SearchEntry::Ids {
                ids: vec![],
                tau: 3,
                degraded_from: Some(9),
                from_cache: true,
            }),
        );
        roundtrip_response(
            3,
            Response::Search(SearchEntry::Rejected { estimated_cost: 123.5, budget: 10.0 }),
        );
        roundtrip_response(4, Response::Search(SearchEntry::Overloaded));
        roundtrip_response(
            5,
            Response::TopK { hits: vec![(3, 0), (9, 2)], degraded_cap: Some(4), from_cache: true },
        );
        roundtrip_response(
            6,
            Response::Batch(vec![
                SearchEntry::Ids { ids: vec![2], tau: 1, degraded_from: None, from_cache: false },
                SearchEntry::Overloaded,
            ]),
        );
        roundtrip_response(7, Response::Mutation(WireMutation::Applied { replaced: true }));
        roundtrip_response(8, Response::Mutation(WireMutation::NotFound));
        roundtrip_response(
            9,
            Response::Stats {
                rows: 1000,
                dim: 128,
                tau_max: 16,
                shards: 4,
                stats: Default::default(),
            },
        );
        roundtrip_response(
            11,
            Response::Metrics { text: "# HELP gph_up Up.\n# TYPE gph_up gauge\ngph_up 1\n".into() },
        );
        let trace = QueryTrace {
            trace_id: 0xFACADE,
            node: "127.0.0.1:7471".into(),
            started_unix_ns: 1_700_000_000_000_000_000,
            tau: 6,
            total_ns: 12_000,
            shards: vec![gph_obs::ShardTrace {
                shard: 0,
                total_ns: 9_000,
                segments: vec![gph_obs::SegmentTrace {
                    segment: 0,
                    rows: 128,
                    phases: gph_obs::PhaseNanos {
                        alloc_ns: 10,
                        verify_ns: 20,
                        ..Default::default()
                    },
                    n_candidates: 7,
                    n_results: 2,
                    ..Default::default()
                }],
            }],
        };
        roundtrip_response(
            12,
            Response::TracedSearch {
                entry: SearchEntry::Ids {
                    ids: vec![3, 8],
                    tau: 6,
                    degraded_from: None,
                    from_cache: false,
                },
                trace: Some(trace),
            },
        );
        roundtrip_response(
            13,
            Response::TracedSearch {
                entry: SearchEntry::Rejected { estimated_cost: 9.0, budget: 1.0 },
                trace: None,
            },
        );
        for err in [
            WireError::Malformed("bad".into()),
            WireError::Unsupported("dim".into()),
            WireError::Rejected { estimated_cost: 5.0, budget: 1.0 },
            WireError::Overloaded,
            WireError::Engine("dup".into()),
            WireError::ShuttingDown,
        ] {
            roundtrip_response(10, Response::Error(err));
        }
    }

    #[test]
    fn fleet_observability_frames_roundtrip() {
        roundtrip_response(
            30,
            Response::Health(NodeHealth {
                slots: vec![0, 3],
                generation: 7,
                rows: 1_000_000,
                queue_depth: 12,
                queue_capacity: 1024,
                degraded: false,
            }),
        );
        roundtrip_response(31, Response::Health(NodeHealth::default()));
        roundtrip_response(
            32,
            Response::AggregateMetrics {
                merged: "# TYPE gph_up gauge\ngph_up 2\n".into(),
                nodes: vec![
                    NodeScrape {
                        node: "127.0.0.1:9001".into(),
                        error: None,
                        text: "# TYPE gph_up gauge\ngph_up 1\n".into(),
                    },
                    NodeScrape {
                        node: "127.0.0.1:9002".into(),
                        error: Some("connection refused".into()),
                        text: String::new(),
                    },
                ],
            },
        );
        roundtrip_response(33, Response::AggregateMetrics { merged: String::new(), nodes: vec![] });
        let slow = QueryTrace {
            trace_id: 9,
            node: "127.0.0.1:9001".into(),
            started_unix_ns: 1,
            tau: 8,
            total_ns: 5_000,
            shards: vec![],
        };
        roundtrip_response(34, Response::SlowQueries { traces: vec![slow.clone(), slow] });
        roundtrip_response(35, Response::SlowQueries { traces: vec![] });
    }

    #[test]
    fn rejects_basic_corruption() {
        let bytes = encode_request(3, &Request::Search { tau: 2, query: vec![7, 8] });
        assert!(decode_frame(&bytes[..HEADER_LEN - 1]).is_err(), "truncated header");
        assert!(decode_frame(&bytes[..bytes.len() - 1]).is_err(), "truncated payload");
        let mut magic = bytes.clone();
        magic[0] ^= 0xFF;
        assert!(decode_frame(&magic).is_err(), "bad magic");
        let mut crc = bytes.clone();
        let n = crc.len();
        crc[n - 1] ^= 0x01;
        assert!(decode_frame(&crc).is_err(), "payload flip");
        let mut trailing = bytes;
        trailing.push(0);
        assert!(decode_frame(&trailing).is_err(), "trailing bytes");
    }

    #[test]
    fn stream_reader_matches_buffer_decoder() {
        let a = encode_request(1, &Request::Ping);
        let b = encode_response(1, &Response::Pong);
        let mut stream: &[u8] = &[a.clone(), b.clone()].concat();
        let (id1, m1, n1) = read_frame(&mut stream).unwrap().unwrap();
        assert_eq!((id1, n1), (1, a.len()));
        assert_eq!(m1, Message::Request(Request::Ping));
        let (_, m2, n2) = read_frame(&mut stream).unwrap().unwrap();
        assert_eq!(m2, Message::Response(Response::Pong));
        assert_eq!(n2, b.len());
        assert!(read_frame(&mut stream).unwrap().is_none(), "clean EOF");
        // Mid-frame EOF is an error, not a silent None.
        let mut cut: &[u8] = &a[..a.len() - 1];
        assert!(read_frame(&mut cut).is_err());
    }

    #[test]
    fn oversized_payload_is_rejected_before_allocation() {
        let mut frame = encode_request(1, &Request::Ping);
        frame[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_frame(&frame).is_err());
        let mut stream: &[u8] = &frame;
        assert!(read_frame(&mut stream).is_err());
    }
}

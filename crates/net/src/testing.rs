//! Deterministic network-fault injection for tests: a [`FaultProxy`]
//! that sits between a client and a real `GPHN` server and misbehaves
//! on a schedule derived entirely from a seed.
//!
//! The proxy forwards bytes in both directions and, per forwarded
//! chunk, rolls a seeded [`ChaCha8Rng`] against a [`FaultPlan`]:
//!
//! * **delayed accepts** — hold a fresh connection before dialing the
//!   upstream, so the client's first request stalls;
//! * **partial writes** — split a chunk and sleep between the halves,
//!   exercising reassembly on both sides of the wire;
//! * **stalls** — sleep with the bytes in hand, exercising timeouts and
//!   slow-peer backpressure;
//! * **torn frames** — forward a prefix of a chunk and slam the
//!   connection shut, leaving the receiver a half-frame;
//! * **abrupt resets** — drop a chunk entirely and shut both
//!   directions.
//!
//! Every connection's schedule is a pure function of
//! `(plan.seed, connection index, direction)`, so a failing seed
//! reproduces byte-for-byte. The counters in [`FaultStats`] let a test
//! assert that a schedule actually exercised the faults it meant to.

use parking_lot::Mutex;
use polling::{poll, PollFd, POLLIN};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A seeded schedule of network misbehavior. Probabilities are rolled
/// once per forwarded chunk (or per accepted connection, for accept
/// delays); `0.0` disables a fault, `1.0` fires it every time.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// Root seed; every connection derives its own RNG from this.
    pub seed: u64,
    /// Probability a fresh connection waits before the upstream dial.
    pub accept_delay_prob: f64,
    /// How long a delayed accept holds the connection.
    pub accept_delay: Duration,
    /// Probability a chunk is forwarded in two halves with a pause.
    pub partial_write_prob: f64,
    /// Probability the proxy sleeps on a chunk before forwarding it.
    pub stall_prob: f64,
    /// How long a stall sleeps.
    pub stall: Duration,
    /// Probability a chunk is truncated and the connection torn down,
    /// leaving the receiver a half-frame.
    pub torn_frame_prob: f64,
    /// Probability a chunk is dropped and both directions reset.
    pub reset_prob: f64,
}

impl FaultPlan {
    /// A transparent pass-through schedule (no faults) under `seed`.
    pub fn clean(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            accept_delay_prob: 0.0,
            accept_delay: Duration::from_millis(20),
            partial_write_prob: 0.0,
            stall_prob: 0.0,
            stall: Duration::from_millis(10),
            torn_frame_prob: 0.0,
            reset_prob: 0.0,
        }
    }

    /// A moderately hostile schedule: frequent partial writes, regular
    /// stalls and delayed accepts, occasional torn frames and resets.
    pub fn chaos(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            accept_delay_prob: 0.25,
            accept_delay: Duration::from_millis(15),
            partial_write_prob: 0.35,
            stall_prob: 0.10,
            stall: Duration::from_millis(5),
            torn_frame_prob: 0.01,
            reset_prob: 0.01,
        }
    }
}

/// What a proxy actually did, for asserting a schedule had teeth.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultStats {
    /// Connections accepted.
    pub connections: u64,
    /// Accepts that were delayed.
    pub delayed_accepts: u64,
    /// Chunks forwarded in two halves.
    pub partial_writes: u64,
    /// Chunks stalled before forwarding.
    pub stalls: u64,
    /// Connections torn down mid-frame.
    pub torn_frames: u64,
    /// Connections reset outright.
    pub resets: u64,
    /// Bytes forwarded (both directions, after faults).
    pub bytes_forwarded: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    delayed_accepts: AtomicU64,
    partial_writes: AtomicU64,
    stalls: AtomicU64,
    torn_frames: AtomicU64,
    resets: AtomicU64,
    bytes_forwarded: AtomicU64,
}

struct ProxyShared {
    stop: AtomicBool,
    counters: Counters,
    /// Clones of every live stream, so `stop` can slam them shut
    /// instead of waiting out read timeouts.
    streams: Mutex<Vec<TcpStream>>,
    pumps: Mutex<Vec<JoinHandle<()>>>,
}

/// A deterministic fault-injecting TCP proxy in front of one upstream
/// address. Dropping the proxy stops it and severs every connection it
/// carried.
pub struct FaultProxy {
    addr: SocketAddr,
    shared: Arc<ProxyShared>,
    acceptor: Option<JoinHandle<()>>,
}

impl FaultProxy {
    /// Binds an ephemeral local port and proxies every connection to
    /// `upstream` under `plan`'s fault schedule.
    pub fn launch(upstream: SocketAddr, plan: FaultPlan) -> std::io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ProxyShared {
            stop: AtomicBool::new(false),
            counters: Counters::default(),
            streams: Mutex::new(Vec::new()),
            pumps: Mutex::new(Vec::new()),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("gph-fault-accept".into())
                .spawn(move || accept_loop(&listener, upstream, plan, &shared))
                .expect("spawning the fault-proxy acceptor")
        };
        Ok(FaultProxy { addr, shared, acceptor: Some(acceptor) })
    }

    /// The proxy's listening address (point clients here).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of what the schedule has done so far.
    pub fn stats(&self) -> FaultStats {
        let c = &self.shared.counters;
        FaultStats {
            connections: c.connections.load(Ordering::Relaxed),
            delayed_accepts: c.delayed_accepts.load(Ordering::Relaxed),
            partial_writes: c.partial_writes.load(Ordering::Relaxed),
            stalls: c.stalls.load(Ordering::Relaxed),
            torn_frames: c.torn_frames.load(Ordering::Relaxed),
            resets: c.resets.load(Ordering::Relaxed),
            bytes_forwarded: c.bytes_forwarded.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, severs every proxied connection, joins all
    /// threads, and returns the final stats.
    pub fn stop(mut self) -> FaultStats {
        self.stop_in_place();
        self.stats()
    }

    fn stop_in_place(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for s in self.shared.streams.lock().drain(..) {
            let _ = s.shutdown(Shutdown::Both);
        }
        let pumps: Vec<_> = self.shared.pumps.lock().drain(..).collect();
        for h in pumps {
            let _ = h.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.stop_in_place();
    }
}

fn accept_loop(
    listener: &TcpListener,
    upstream: SocketAddr,
    plan: FaultPlan,
    shared: &Arc<ProxyShared>,
) {
    let mut accept_rng =
        ChaCha8Rng::seed_from_u64(plan.seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
    let mut conn_index: u64 = 0;
    while !shared.stop.load(Ordering::SeqCst) {
        let mut fds = [PollFd::new(listener.as_raw_fd(), POLLIN)];
        if poll(&mut fds, 50).is_err() {
            continue;
        }
        loop {
            let client = match listener.accept() {
                Ok((s, _)) => s,
                Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => return,
            };
            shared.counters.connections.fetch_add(1, Ordering::Relaxed);
            if accept_rng.random_bool(plan.accept_delay_prob) {
                shared.counters.delayed_accepts.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(plan.accept_delay);
            }
            let server = match TcpStream::connect(upstream) {
                Ok(s) => s,
                // Upstream down (e.g. mid rolling restart): drop the
                // client, which sees an abrupt close and retries.
                Err(_) => continue,
            };
            let _ = client.set_nodelay(true);
            let _ = server.set_nodelay(true);
            spawn_pumps(client, server, plan, conn_index, shared);
            conn_index += 1;
        }
    }
}

fn spawn_pumps(
    client: TcpStream,
    server: TcpStream,
    plan: FaultPlan,
    conn_index: u64,
    shared: &Arc<ProxyShared>,
) {
    let pairs = match (client.try_clone(), server.try_clone()) {
        (Ok(c2), Ok(s2)) => [(client, s2, 0u64), (server, c2, 1u64)],
        _ => return,
    };
    let mut registry = shared.streams.lock();
    let mut pumps = shared.pumps.lock();
    for (src, dst, dir) in pairs {
        if let (Ok(a), Ok(b)) = (src.try_clone(), dst.try_clone()) {
            registry.push(a);
            registry.push(b);
        }
        let rng = ChaCha8Rng::seed_from_u64(plan.seed ^ (conn_index << 1 | dir));
        let shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name(format!("gph-fault-pump-{conn_index}-{dir}"))
            .spawn(move || pump(src, dst, rng, plan, &shared))
            .expect("spawning a fault-proxy pump");
        pumps.push(handle);
    }
}

/// Forwards `src` → `dst`, rolling the fault schedule per chunk.
fn pump(
    src: TcpStream,
    dst: TcpStream,
    mut rng: ChaCha8Rng,
    plan: FaultPlan,
    shared: &ProxyShared,
) {
    let _ = src.set_read_timeout(Some(Duration::from_millis(25)));
    let mut src = src;
    let mut dst = dst;
    let mut buf = [0u8; 4096];
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let n = match src.read(&mut buf) {
            Ok(0) => {
                // Half-close propagates: the peer may still be reading
                // responses on the other pump.
                let _ = dst.shutdown(Shutdown::Write);
                return;
            }
            Ok(n) => n,
            Err(ref e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        };
        if rng.random_bool(plan.reset_prob) {
            shared.counters.resets.fetch_add(1, Ordering::Relaxed);
            let _ = src.shutdown(Shutdown::Both);
            let _ = dst.shutdown(Shutdown::Both);
            return;
        }
        if n >= 8 && rng.random_bool(plan.torn_frame_prob) {
            shared.counters.torn_frames.fetch_add(1, Ordering::Relaxed);
            let _ = dst.write_all(&buf[..n / 2]);
            let _ = src.shutdown(Shutdown::Both);
            let _ = dst.shutdown(Shutdown::Both);
            return;
        }
        if rng.random_bool(plan.stall_prob) {
            shared.counters.stalls.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(plan.stall);
        }
        let wrote = if n >= 2 && rng.random_bool(plan.partial_write_prob) {
            shared.counters.partial_writes.fetch_add(1, Ordering::Relaxed);
            let mid = n / 2;
            dst.write_all(&buf[..mid]).and_then(|()| {
                std::thread::sleep(Duration::from_millis(1));
                dst.write_all(&buf[mid..n])
            })
        } else {
            dst.write_all(&buf[..n])
        };
        if wrote.is_err() {
            return;
        }
        shared.counters.bytes_forwarded.fetch_add(n as u64, Ordering::Relaxed);
    }
}

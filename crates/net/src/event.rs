//! The readiness-driven event loop every `GPHN` server runs on: a fixed
//! thread set multiplexing any number of nonblocking connections, so a
//! server can hold thousands of idle clients without a thread per
//! connection.
//!
//! Threads, all spawned at bind time and independent of connection
//! count:
//!
//! * one **acceptor** — polls the listener, applies the connection cap
//!   (over-cap accepts get a best-effort `Overloaded` frame and close),
//!   and deals new connections round-robin to the workers;
//! * [`ServerConfig::workers`] **workers** — each owns a set of
//!   connections and runs `poll(2)` over their sockets plus a
//!   [`polling::WakePipe`]. A worker reads frames into a per-connection
//!   buffer, decodes them incrementally, and asks the server's
//!   [`RequestHandler`] for a [`Reply`]. Immediate replies queue for
//!   write in place; deferred ones ship to the resolver pool and land
//!   back via the wake pipe. Responses always leave in request order
//!   (per-connection sequence slots), whatever order they resolve in.
//! * [`ServerConfig::resolvers`] **resolvers** — the only threads that
//!   block, running [`Reply::Later`] closures (engine ticket waits).
//!
//! Backpressure: a connection's write buffer is capped at
//! [`ServerConfig::max_write_buffer`]; when a slow reader fills it, the
//! worker parks further responses in their slots and stops polling the
//! socket for readability (also once [`ServerConfig::max_pipelined`]
//! responses are in flight), so one slow client bounds its own memory
//! instead of the server's. Idle connections are evicted after
//! [`ServerConfig::idle_timeout`]. Graceful [`EventLoop::shutdown`]
//! stops the acceptor, takes one final drain of every socket's already
//! arrived bytes, resolves and flushes everything in flight, then joins
//! all threads.

use crate::protocol::{decode_frame, encode_response, frame_len, Message, Response, WireError};
use crossbeam::channel::{Receiver, Sender};
use gph_obs::{Counter, Gauge, MetricsRegistry};
use polling::{PollFd, WakePipe, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server knobs, shared by every event-loop server ([`crate::NetServer`]
/// and [`crate::MetastoreServer`]).
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Maximum simultaneously-open connections; further accepts are
    /// answered with a single `Overloaded` error frame and closed.
    pub max_connections: usize,
    /// Event-loop worker threads multiplexing the connections.
    pub workers: usize,
    /// Resolver threads that block on deferred replies (engine ticket
    /// waits); bounds how many slow queries resolve concurrently.
    pub resolvers: usize,
    /// Evict a connection with no traffic and nothing in flight for this
    /// long; `None` (the default) keeps idle connections forever.
    pub idle_timeout: Option<Duration>,
    /// Per-connection cap on buffered response bytes awaiting a slow
    /// reader; beyond it the worker stops encoding (and stops reading
    /// more requests) until the peer drains.
    pub max_write_buffer: usize,
    /// Per-connection cap on responses in flight (queued or resolving);
    /// at the cap the worker stops polling the socket for readability.
    pub max_pipelined: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            workers: 2,
            resolvers: 4,
            idle_timeout: None,
            max_write_buffer: 4 << 20,
            max_pipelined: 1024,
        }
    }
}

/// Point-in-time server counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetServerStats {
    /// Connections accepted over the server's lifetime.
    pub connections_opened: u64,
    /// Connections currently open.
    pub connections_active: u64,
    /// Connections refused because `max_connections` was reached.
    pub connections_refused: u64,
    /// Request frames decoded.
    pub requests: u64,
    /// Response frames written (errors included).
    pub responses: u64,
    /// Error frames among the responses.
    pub errors_sent: u64,
    /// Inbound frames that failed to decode (each closes its connection).
    pub protocol_errors: u64,
    /// Bytes read off sockets (well-formed frames only).
    pub bytes_in: u64,
    /// Bytes written to sockets.
    pub bytes_out: u64,
    /// Connections evicted by [`ServerConfig::idle_timeout`].
    pub idle_evictions: u64,
    /// Times a connection hit [`ServerConfig::max_write_buffer`] and
    /// response encoding paused for a slow reader.
    pub backpressure_pauses: u64,
    /// Largest per-connection write buffer observed, in bytes (stays
    /// within [`ServerConfig::max_write_buffer`] plus one frame).
    pub write_buffer_peak: u64,
}

/// Event-loop counters, registered as `gph_net_*` series so the server's
/// network layer shows up in the same `Metrics` exposition as the engine
/// (and federates across the fleet like everything else).
struct Counters {
    connections_opened: Counter,
    connections_active: Gauge,
    connections_refused: Counter,
    requests: Counter,
    responses: Counter,
    errors_sent: Counter,
    protocol_errors: Counter,
    bytes_in: Counter,
    bytes_out: Counter,
    idle_evictions: Counter,
    backpressure_pauses: Counter,
    write_buffer_peak: Gauge,
}

impl Counters {
    fn register(reg: &MetricsRegistry) -> Counters {
        Counters {
            connections_opened: reg.counter(
                "gph_net_connections_opened_total",
                "Connections accepted over the server's lifetime.",
                &[],
            ),
            connections_active: reg.gauge(
                "gph_net_connections_active",
                "Connections currently open.",
                &[],
            ),
            connections_refused: reg.counter(
                "gph_net_connections_refused_total",
                "Connections refused at the max_connections cap.",
                &[],
            ),
            requests: reg.counter("gph_net_requests_total", "Request frames decoded.", &[]),
            responses: reg.counter(
                "gph_net_responses_total",
                "Response frames written (errors included).",
                &[],
            ),
            errors_sent: reg.counter(
                "gph_net_errors_sent_total",
                "Error frames among the responses.",
                &[],
            ),
            protocol_errors: reg.counter(
                "gph_net_protocol_errors_total",
                "Inbound frames that failed to decode (each closes its connection).",
                &[],
            ),
            bytes_in: reg.counter(
                "gph_net_bytes_in_total",
                "Bytes read off sockets (well-formed frames only).",
                &[],
            ),
            bytes_out: reg.counter("gph_net_bytes_out_total", "Bytes written to sockets.", &[]),
            idle_evictions: reg.counter(
                "gph_net_idle_evictions_total",
                "Connections evicted by the idle timeout.",
                &[],
            ),
            backpressure_pauses: reg.counter(
                "gph_net_backpressure_pauses_total",
                "Times response encoding paused for a slow reader at the write-buffer cap.",
                &[],
            ),
            write_buffer_peak: reg.gauge(
                "gph_net_write_buffer_peak",
                "Largest per-connection write buffer observed, in bytes.",
                &[],
            ),
        }
    }

    fn snapshot(&self) -> NetServerStats {
        NetServerStats {
            connections_opened: self.connections_opened.get(),
            connections_active: self.connections_active.get(),
            connections_refused: self.connections_refused.get(),
            requests: self.requests.get(),
            responses: self.responses.get(),
            errors_sent: self.errors_sent.get(),
            protocol_errors: self.protocol_errors.get(),
            bytes_in: self.bytes_in.get(),
            bytes_out: self.bytes_out.get(),
            idle_evictions: self.idle_evictions.get(),
            backpressure_pauses: self.backpressure_pauses.get(),
            write_buffer_peak: self.write_buffer_peak.get(),
        }
    }

    fn note_write_buffer(&self, len: usize) {
        self.write_buffer_peak.set_max(len as u64);
    }
}

/// How a [`RequestHandler`] answers one request.
pub enum Reply {
    /// The response is ready; the worker queues it for write in place.
    Now(Response),
    /// The response needs blocking work (an engine ticket wait); the
    /// closure runs on a resolver thread and its result is delivered in
    /// the request's original position.
    Later(Box<dyn FnOnce() -> Response + Send>),
}

/// What an event-loop server actually serves: one decoded request in,
/// one [`Reply`] out. Implementations must not block in `handle` —
/// return [`Reply::Later`] for anything that waits.
pub trait RequestHandler: Send + Sync + 'static {
    /// Produces the reply for one request.
    fn handle(&self, req: crate::protocol::Request) -> Reply;
}

struct Shared {
    handler: Arc<dyn RequestHandler>,
    running: AtomicBool,
    counters: Counters,
    cfg: ServerConfig,
}

enum WorkerMsg {
    NewConn(TcpStream),
    // Boxed: a Response can be hundreds of bytes, and NewConn traffic
    // should not pay for it in channel-slot size.
    Resolved { conn: u64, seq: u64, response: Box<Response> },
}

struct ResolveJob {
    conn: u64,
    seq: u64,
    worker: usize,
    run: Box<dyn FnOnce() -> Response + Send>,
}

type WorkerPost = (Sender<WorkerMsg>, Arc<WakePipe>);

/// One queued response position. Requests claim a slot in arrival order;
/// the frame is encoded (and the slot retired) only once every earlier
/// slot has shipped, which is what keeps pipelined responses in request
/// order under out-of-order resolution.
struct Slot {
    seq: u64,
    request_id: u64,
    response: Option<Response>,
}

struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    /// Encoded frames awaiting the socket; `write_pos..` is unsent.
    write_buf: Vec<u8>,
    write_pos: usize,
    out: VecDeque<Slot>,
    next_seq: u64,
    last_activity: Instant,
    /// Peer sent FIN; frames already buffered still get parsed and
    /// served before the connection winds down.
    eof: bool,
    /// No more reads will be parsed: EOF fully processed, framing lost
    /// to a protocol error, or server-side drain.
    read_closed: bool,
    /// In a backpressure pause (counted once per pause, not per byte).
    paused: bool,
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            out: VecDeque::new(),
            next_seq: 0,
            last_activity: Instant::now(),
            eof: false,
            read_closed: false,
            paused: false,
            dead: false,
        }
    }

    fn buffered_write(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    /// All responses delivered and flushed after the peer (or shutdown)
    /// closed the read side — time to close.
    fn finished(&self) -> bool {
        self.read_closed && self.out.is_empty() && self.buffered_write() == 0
    }

    fn wants_read(&self, cfg: &ServerConfig) -> bool {
        !self.read_closed
            && !self.dead
            && self.out.len() < cfg.max_pipelined
            && self.buffered_write() < cfg.max_write_buffer
    }
}

/// A readiness-driven `GPHN` server front end: accepts connections and
/// feeds decoded requests to a [`RequestHandler`]. [`crate::NetServer`]
/// and [`crate::MetastoreServer`] are thin handlers over this loop.
pub struct EventLoop {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<WorkerHandle>,
    resolvers: Vec<JoinHandle<()>>,
    resolve_tx: Option<Sender<ResolveJob>>,
}

struct WorkerHandle {
    post: WorkerPost,
    handle: Option<JoinHandle<()>>,
}

impl EventLoop {
    /// Binds `addr` and starts the acceptor, worker, and resolver
    /// threads serving `handler`. The loop's counters register as
    /// `gph_net_*` series in `registry`, so they ride along in whatever
    /// `Metrics` exposition the server renders.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        handler: Arc<dyn RequestHandler>,
        cfg: ServerConfig,
        registry: &MetricsRegistry,
    ) -> std::io::Result<EventLoop> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            handler,
            running: AtomicBool::new(true),
            counters: Counters::register(registry),
            cfg,
        });

        let (resolve_tx, resolve_rx) = crossbeam::channel::unbounded::<ResolveJob>();
        let mut workers = Vec::new();
        let mut posts: Vec<WorkerPost> = Vec::new();
        for i in 0..cfg.workers.max(1) {
            let (tx, rx) = crossbeam::channel::unbounded::<WorkerMsg>();
            let wake = Arc::new(WakePipe::new()?);
            let post = (tx, Arc::clone(&wake));
            let handle = {
                let shared = Arc::clone(&shared);
                let resolve_tx = resolve_tx.clone();
                std::thread::Builder::new()
                    .name(format!("gph-net-worker-{i}"))
                    .spawn(move || worker_loop(i, &rx, &wake, &resolve_tx, &shared))
                    .expect("spawning an event-loop worker thread")
            };
            posts.push(post.clone());
            workers.push(WorkerHandle { post, handle: Some(handle) });
        }

        let resolvers = (0..cfg.resolvers.max(1))
            .map(|i| {
                let rx = resolve_rx.clone();
                let posts = posts.clone();
                std::thread::Builder::new()
                    .name(format!("gph-net-resolver-{i}"))
                    .spawn(move || resolver_loop(&rx, &posts))
                    .expect("spawning a resolver thread")
            })
            .collect();

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("gph-net-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &posts))
                .expect("spawning the accept thread")
        };

        Ok(EventLoop {
            shared,
            addr: local,
            acceptor: Some(acceptor),
            workers,
            resolvers,
            resolve_tx: Some(resolve_tx),
        })
    }

    /// The address the server is listening on (with the concrete port
    /// when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Counter snapshot.
    pub fn stats(&self) -> NetServerStats {
        self.shared.counters.snapshot()
    }

    /// Stops accepting, drains every connection's already-received
    /// requests through the handler, flushes all in-flight responses,
    /// joins every thread, and returns the final counters.
    pub fn shutdown(mut self) -> NetServerStats {
        self.shutdown_in_place();
        self.stats()
    }

    fn shutdown_in_place(&mut self) {
        self.shared.running.store(false, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            h.join().expect("the accept thread never panics");
        }
        for w in &self.workers {
            w.post.1.wake();
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                h.join().expect("worker threads never panic");
            }
        }
        // Workers are gone; dropping the last job sender ends the
        // resolver pool (any jobs they already delivered went to worker
        // queues that no longer exist, which is fine — the workers only
        // exit once every slot they own has resolved and flushed).
        self.resolve_tx = None;
        for h in self.resolvers.drain(..) {
            h.join().expect("resolver threads never panic");
        }
    }
}

impl Drop for EventLoop {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.shutdown_in_place();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, posts: &[WorkerPost]) {
    let mut next_worker = 0usize;
    while shared.running.load(Ordering::SeqCst) {
        let mut fds = [PollFd::new(listener.as_raw_fd(), POLLIN)];
        let _ = polling::poll(&mut fds, 100);
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let c = &shared.counters;
                    if c.connections_active.get() >= shared.cfg.max_connections as u64 {
                        c.connections_refused.inc();
                        refuse(stream);
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    c.connections_opened.inc();
                    c.connections_active.inc();
                    let (tx, wake) = &posts[next_worker % posts.len()];
                    next_worker += 1;
                    if tx.send(WorkerMsg::NewConn(stream)).is_err() {
                        c.connections_active.dec();
                        return; // workers are gone; so is the server
                    }
                    wake.wake();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(5));
                    break;
                }
            }
        }
    }
}

/// Best-effort `Overloaded` error frame to a connection over the cap.
fn refuse(mut stream: TcpStream) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let frame = encode_response(0, &Response::Error(WireError::Overloaded));
    let _ = stream.write_all(&frame);
    let _ = stream.flush();
}

fn resolver_loop(rx: &Receiver<ResolveJob>, posts: &[WorkerPost]) {
    for job in rx.iter() {
        let response = (job.run)();
        let (tx, wake) = &posts[job.worker];
        let response = Box::new(response);
        if tx.send(WorkerMsg::Resolved { conn: job.conn, seq: job.seq, response }).is_ok() {
            wake.wake();
        }
    }
}

fn worker_loop(
    worker_idx: usize,
    rx: &Receiver<WorkerMsg>,
    wake: &WakePipe,
    resolve_tx: &Sender<ResolveJob>,
    shared: &Arc<Shared>,
) {
    let cfg = shared.cfg;
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_conn_id = 0u64;
    let mut draining = false;
    // Reused across iterations: the poll set plus the conn id behind
    // each entry (entry 0 is the wake pipe).
    let mut fds: Vec<PollFd> = Vec::new();
    let mut fd_conns: Vec<u64> = Vec::new();

    loop {
        for msg in rx.try_iter() {
            match msg {
                WorkerMsg::NewConn(stream) => {
                    let id = next_conn_id;
                    next_conn_id += 1;
                    let mut conn = Conn::new(stream);
                    if draining {
                        // Late arrival during shutdown: serve whatever is
                        // already in its socket buffer, then drain out.
                        read_pump(id, &mut conn, worker_idx, resolve_tx, shared);
                        conn.read_closed = true;
                    }
                    conns.insert(id, conn);
                }
                WorkerMsg::Resolved { conn, seq, response } => {
                    if let Some(c) = conns.get_mut(&conn) {
                        if let Some(slot) = c.out.iter_mut().find(|s| s.seq == seq) {
                            slot.response = Some(*response);
                        }
                    }
                }
            }
        }

        if !draining && !shared.running.load(Ordering::SeqCst) {
            draining = true;
            // Final read drain: frames the client pipelined before
            // shutdown are already in socket buffers; serve them rather
            // than drop them, then stop reading.
            let ids: Vec<u64> = conns.keys().copied().collect();
            for id in ids {
                let mut conn = conns.remove(&id).expect("listed above");
                read_pump(id, &mut conn, worker_idx, resolve_tx, shared);
                conn.read_closed = true;
                conns.insert(id, conn);
            }
        }

        let now = Instant::now();
        conns.retain(|_, conn| {
            pump_out(conn, &shared.counters, &cfg);
            try_flush(conn);
            if conn.dead || conn.finished() {
                let _ = conn.stream.shutdown(Shutdown::Both);
                shared.counters.connections_active.dec();
                return false;
            }
            if let Some(limit) = cfg.idle_timeout {
                let idle = !conn.read_closed
                    && conn.out.is_empty()
                    && conn.buffered_write() == 0
                    && now.duration_since(conn.last_activity) >= limit;
                if idle {
                    shared.counters.idle_evictions.inc();
                    let _ = conn.stream.shutdown(Shutdown::Both);
                    shared.counters.connections_active.dec();
                    return false;
                }
            }
            true
        });

        if draining && conns.is_empty() {
            return;
        }

        fds.clear();
        fd_conns.clear();
        fds.push(PollFd::new(wake.read_fd(), POLLIN));
        for (&id, conn) in &conns {
            let mut events = 0i16;
            if conn.wants_read(&cfg) {
                events |= POLLIN;
            }
            if conn.buffered_write() > 0 {
                events |= POLLOUT;
            }
            fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
            fd_conns.push(id);
        }

        let timeout_ms = if draining {
            10
        } else if let Some(limit) = cfg.idle_timeout {
            // Wake in time for the nearest idle deadline.
            let nearest = conns
                .values()
                .map(|c| limit.saturating_sub(now.duration_since(c.last_activity)))
                .min()
                .unwrap_or(limit)
                .min(Duration::from_millis(250));
            nearest.as_millis().max(1) as i32
        } else {
            250
        };
        let _ = polling::poll(&mut fds, timeout_ms);

        if fds[0].revents & POLLIN != 0 {
            wake.drain();
        }
        for (i, &id) in fd_conns.iter().enumerate() {
            let revents = fds[i + 1].revents;
            if revents == 0 {
                continue;
            }
            let Some(mut conn) = conns.remove(&id) else { continue };
            if revents & POLLNVAL != 0 {
                conn.dead = true;
            } else {
                if revents & (POLLIN | POLLHUP | POLLERR) != 0 && !conn.read_closed {
                    read_pump(id, &mut conn, worker_idx, resolve_tx, shared);
                }
                if revents & POLLOUT != 0 {
                    try_flush(&mut conn);
                }
            }
            conns.insert(id, conn);
        }
    }
}

/// Reads everything currently available (bounded per pass), parses
/// complete frames out of the connection's read buffer, and dispatches
/// them through the handler.
fn read_pump(
    id: u64,
    conn: &mut Conn,
    worker_idx: usize,
    resolve_tx: &Sender<ResolveJob>,
    shared: &Arc<Shared>,
) {
    let mut tmp = [0u8; 16 * 1024];
    // Cap one pass at ~1 MiB so a firehose peer cannot starve the other
    // connections on this worker; level-triggered poll resumes the rest.
    for _ in 0..64 {
        match conn.stream.read(&mut tmp) {
            Ok(0) => {
                conn.eof = true;
                break;
            }
            Ok(n) => {
                conn.read_buf.extend_from_slice(&tmp[..n]);
                conn.last_activity = Instant::now();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    parse_frames(id, conn, worker_idx, resolve_tx, shared);
    if conn.read_closed {
        // Framing is lost: whatever else the peer buffered is garbage,
        // and must not trigger a second error below.
        conn.read_buf.clear();
    } else if conn.eof {
        if !conn.read_buf.is_empty() {
            // EOF mid-frame: report the truncation once, like the
            // blocking reader used to.
            protocol_error(
                conn,
                &shared.counters,
                format!("connection closed mid-frame ({} bytes)", conn.read_buf.len()),
            );
            conn.read_buf.clear();
        }
        conn.read_closed = true;
    }
}

/// Consumes every complete frame at the front of `conn.read_buf`.
fn parse_frames(
    id: u64,
    conn: &mut Conn,
    worker_idx: usize,
    resolve_tx: &Sender<ResolveJob>,
    shared: &Arc<Shared>,
) {
    let mut pos = 0;
    while !conn.read_closed && !conn.dead {
        let rest = &conn.read_buf[pos..];
        let need = match frame_len(rest) {
            Ok(Some(need)) if need <= rest.len() => need,
            Ok(_) => break, // header or payload still arriving
            Err(e) => {
                protocol_error(conn, &shared.counters, e.to_string());
                break;
            }
        };
        match decode_frame(&rest[..need]) {
            Ok((request_id, Message::Request(req))) => {
                let c = &shared.counters;
                c.bytes_in.add(need as u64);
                c.requests.inc();
                let seq = conn.next_seq;
                conn.next_seq += 1;
                match shared.handler.handle(req) {
                    Reply::Now(response) => {
                        conn.out.push_back(Slot { seq, request_id, response: Some(response) });
                    }
                    Reply::Later(run) => {
                        conn.out.push_back(Slot { seq, request_id, response: None });
                        let job = ResolveJob { conn: id, seq, worker: worker_idx, run };
                        resolve_tx.send(job).expect("the resolver pool outlives the workers");
                    }
                }
            }
            Ok((request_id, Message::Response(_))) => {
                let msg = "received a response frame on the server".to_string();
                shared.counters.protocol_errors.inc();
                push_error(conn, request_id, msg);
            }
            Err(e) => {
                protocol_error(conn, &shared.counters, e.to_string());
            }
        }
        pos += need;
    }
    conn.read_buf.drain(..pos);
}

/// Framing is lost: count it, queue one `Malformed` reply (on the
/// reserved id 0), and stop reading — pending work still drains.
fn protocol_error(conn: &mut Conn, counters: &Counters, msg: String) {
    counters.protocol_errors.inc();
    push_error(conn, 0, msg);
}

fn push_error(conn: &mut Conn, request_id: u64, msg: String) {
    let seq = conn.next_seq;
    conn.next_seq += 1;
    let response = Some(Response::Error(WireError::Malformed(msg)));
    conn.out.push_back(Slot { seq, request_id, response });
    conn.read_closed = true;
}

/// Encodes resolved head-of-queue slots into the write buffer, stopping
/// at the backpressure cap (order is the slot queue's — request order).
fn pump_out(conn: &mut Conn, counters: &Counters, cfg: &ServerConfig) {
    loop {
        if conn.buffered_write() >= cfg.max_write_buffer {
            if conn.out.front().is_some_and(|s| s.response.is_some()) && !conn.paused {
                conn.paused = true;
                counters.backpressure_pauses.inc();
            }
            break;
        }
        let ready = conn.out.front().is_some_and(|s| s.response.is_some());
        if !ready {
            break;
        }
        conn.paused = false;
        let slot = conn.out.pop_front().expect("checked above");
        let response = slot.response.expect("checked above");
        let is_error = matches!(response, Response::Error(_));
        let frame = encode_response(slot.request_id, &response);
        conn.write_buf.extend_from_slice(&frame);
        counters.note_write_buffer(conn.buffered_write());
        counters.bytes_out.add(frame.len() as u64);
        counters.responses.inc();
        if is_error {
            counters.errors_sent.inc();
        }
    }
}

/// Writes as much of the buffered output as the socket will take.
fn try_flush(conn: &mut Conn) {
    while conn.write_pos < conn.write_buf.len() {
        match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(n) => conn.write_pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    // Reclaim consumed space once it dominates the buffer (or all of it
    // went out) instead of shifting bytes on every write.
    if conn.write_pos == conn.write_buf.len() {
        conn.write_buf.clear();
        conn.write_pos = 0;
    } else if conn.write_pos > 64 * 1024 {
        conn.write_buf.drain(..conn.write_pos);
        conn.write_pos = 0;
    }
}

//! The TCP front end: a [`NetServer`] accepts `GPHN` connections and
//! serves them from an [`Arc<QueryService>`].
//!
//! The server is a [`RequestHandler`] plugged into the shared
//! readiness-driven [`EventLoop`] (see [`crate::event`]): a fixed
//! acceptor + worker + resolver thread set multiplexes every connection
//! over nonblocking sockets, so thousands of idle clients cost no
//! threads. Cheap requests (ping, stats, metrics, mutations, validation
//! errors) resolve inline on the worker; searches submit engine work
//! ([`QueryService::submit`] / [`QueryService::submit_batch`] /
//! [`QueryService::submit_topk`]) and hand the ticket wait to the
//! resolver pool, so a slow query never stalls the socket — pipelined
//! requests keep flowing and responses still leave in request order.
//!
//! Admission-control rejections surface as typed [`WireError::Rejected`]
//! error frames (in-band entries inside batch responses). Graceful
//! [`NetServer::shutdown`] stops the accept loop, drains every
//! connection's already-received requests through the engine, flushes
//! the responses, and joins the fixed thread set.

use crate::event::{EventLoop, Reply, RequestHandler};
use crate::protocol::{NodeHealth, Request, Response, SearchEntry, WireError, WireMutation};
use gph_serve::{MutationOutcome, Outcome, QueryService, Ticket};
use hamming_core::words_for;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::{Arc, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

pub use crate::event::{NetServerStats, ServerConfig};

/// A TCP server over a shared [`QueryService`]. Binding spawns the
/// event-loop threads; dropping (or [`NetServer::shutdown`]) drains
/// in-flight work and joins every thread.
pub struct NetServer {
    inner: EventLoop,
    service: Arc<QueryService>,
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections served from `service`.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        service: Arc<QueryService>,
        cfg: ServerConfig,
    ) -> std::io::Result<NetServer> {
        Self::bind_with_slots(addr, service, cfg, Vec::new())
    }

    /// [`NetServer::bind`] for a fleet node: `slots` are the manifest
    /// shard slots this node owns, reported verbatim by the `Health` op
    /// so fleet clients can check ownership without a metastore trip.
    pub fn bind_with_slots<A: ToSocketAddrs>(
        addr: A,
        service: Arc<QueryService>,
        cfg: ServerConfig,
        slots: Vec<u32>,
    ) -> std::io::Result<NetServer> {
        let index = service.index();
        let handler = Arc::new(ServiceHandler {
            service: Arc::clone(&service),
            expected_words: words_for(index.dim()),
            tau_max: index.tau_max() as u32,
            slots,
            node: OnceLock::new(),
        });
        let registry = Arc::clone(service.registry());
        let inner = EventLoop::bind(addr, Arc::clone(&handler) as _, cfg, &registry)?;
        // The concrete bound address (port 0 is resolved by now) is the
        // node identity stamped into traced-search hop contexts.
        let _ = handler.node.set(inner.local_addr().to_string());
        Ok(NetServer { inner, service })
    }

    /// The address the server is listening on (with the concrete port
    /// when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr()
    }

    /// The service being served.
    pub fn service(&self) -> &Arc<QueryService> {
        &self.service
    }

    /// Counter snapshot.
    pub fn stats(&self) -> NetServerStats {
        self.inner.stats()
    }

    /// Stops accepting, drains all in-flight work through the engine,
    /// joins every thread, and returns the final counters.
    pub fn shutdown(self) -> NetServerStats {
        self.inner.shutdown()
    }
}

/// The [`RequestHandler`] serving a [`QueryService`].
struct ServiceHandler {
    service: Arc<QueryService>,
    expected_words: usize,
    tau_max: u32,
    /// Manifest shard slots this node owns (empty outside a fleet).
    slots: Vec<u32>,
    /// This node's identity (its bound address), set right after bind;
    /// stamped into traced-search hop contexts and drained slow traces.
    node: OnceLock<String>,
}

impl ServiceHandler {
    fn node_name(&self) -> String {
        self.node.get().cloned().unwrap_or_default()
    }
}

/// Wall-clock nanoseconds since the UNIX epoch (0 if the clock is
/// before the epoch, which only a badly skewed host produces).
fn unix_now_ns() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| d.as_nanos() as u64)
}

impl ServiceHandler {
    fn check_words(&self, what: &str, words: &[u64]) -> Result<(), String> {
        if words.len() != self.expected_words {
            return Err(format!(
                "{what} has {} words, index needs {}",
                words.len(),
                self.expected_words
            ));
        }
        Ok(())
    }

    fn check_tau(&self, tau: u32) -> Result<(), String> {
        if tau > self.tau_max {
            return Err(format!("tau {tau} exceeds the index tau_max {}", self.tau_max));
        }
        Ok(())
    }
}

fn unsupported(msg: String) -> Reply {
    Reply::Now(Response::Error(WireError::Unsupported(msg)))
}

/// Defers a ticket wait to the resolver pool.
fn later(
    ticket: Ticket,
    resolve: impl FnOnce(Vec<gph_serve::Response>) -> Response + Send + 'static,
) -> Reply {
    Reply::Later(Box::new(move || resolve(ticket.wait())))
}

impl RequestHandler for ServiceHandler {
    fn handle(&self, req: Request) -> Reply {
        match req {
            Request::Ping => Reply::Now(Response::Pong),
            Request::Stats => {
                let index = self.service.index();
                Reply::Now(Response::Stats {
                    rows: index.len() as u64,
                    dim: index.dim() as u32,
                    tau_max: self.tau_max,
                    shards: index.num_shards() as u32,
                    stats: self.service.snapshot_stats(),
                })
            }
            Request::Metrics => Reply::Now(Response::Metrics { text: self.service.metrics_text() }),
            Request::Search { tau, query } => {
                if let Err(msg) =
                    self.check_words("query", &query).and_then(|()| self.check_tau(tau))
                {
                    return unsupported(msg);
                }
                later(self.service.submit(&query, tau), resolve_range)
            }
            Request::TracedSearch { tau, query, trace_id } => {
                if let Err(msg) =
                    self.check_words("query", &query).and_then(|()| self.check_tau(tau))
                {
                    return unsupported(msg);
                }
                // Hop context: stamp the client's trace id, this node's
                // identity, and the arrival timestamp into the returned
                // trace, so a fleet client can merge hops across nodes.
                let node = self.node_name();
                let started = unix_now_ns();
                later(self.service.submit_traced(&query, tau), move |responses| {
                    let mut resp = resolve_traced(responses);
                    if let Response::TracedSearch { trace: Some(t), .. } = &mut resp {
                        t.trace_id = trace_id;
                        t.node = node;
                        t.started_unix_ns = started;
                    }
                    resp
                })
            }
            Request::Health => {
                let index = self.service.index();
                Reply::Now(Response::Health(NodeHealth {
                    slots: self.slots.clone(),
                    generation: self.service.generation(),
                    rows: index.len() as u64,
                    queue_depth: self.service.queue_depth() as u32,
                    queue_capacity: self.service.queue_capacity() as u32,
                    degraded: self.service.degraded(),
                }))
            }
            Request::SlowQueries { max } => {
                let mut traces = self.service.tracer().slow_queries();
                if max > 0 && traces.len() > max as usize {
                    traces.drain(..traces.len() - max as usize);
                }
                // Ring traces were recorded engine-side, before any hop
                // stamping; attach this node's identity on the way out.
                let node = self.node_name();
                for t in &mut traces {
                    if t.node.is_empty() {
                        t.node = node.clone();
                    }
                }
                Reply::Now(Response::SlowQueries { traces })
            }
            Request::AggregateMetrics => {
                unsupported("this server is a query node, not a metastore".into())
            }
            Request::TopK { k, query } => {
                if let Err(msg) = self.check_words("query", &query) {
                    return unsupported(msg);
                }
                later(self.service.submit_topk(&query, k as usize), resolve_topk)
            }
            Request::BatchSearch { tau, queries } => {
                if let Some(q) = queries.iter().find(|q| q.len() != self.expected_words) {
                    return unsupported(format!(
                        "batch query has {} words, index needs {}",
                        q.len(),
                        self.expected_words
                    ));
                }
                if let Err(msg) = self.check_tau(tau) {
                    return unsupported(msg);
                }
                let refs: Vec<&[u64]> = queries.iter().map(Vec::as_slice).collect();
                later(self.service.submit_batch(&refs, tau), resolve_batch)
            }
            Request::Insert { id, row } => {
                if let Err(msg) = self.check_words("row", &row) {
                    return unsupported(msg);
                }
                Reply::Now(match self.service.insert(id, &row) {
                    Ok(resp) => mutation_response(resp),
                    Err(e) => Response::Error(WireError::Engine(e.to_string())),
                })
            }
            Request::Upsert { id, row } => {
                if let Err(msg) = self.check_words("row", &row) {
                    return unsupported(msg);
                }
                Reply::Now(match self.service.upsert(id, &row) {
                    Ok(resp) => mutation_response(resp),
                    Err(e) => Response::Error(WireError::Engine(e.to_string())),
                })
            }
            Request::Delete { id } => Reply::Now(mutation_response(self.service.delete(id))),
            Request::GetManifest | Request::PublishManifest { .. } => {
                unsupported("this server is a query node, not a metastore".into())
            }
        }
    }
}

/// Maps a service mutation response onto the wire.
fn mutation_response(resp: gph_serve::MutationResponse) -> Response {
    match resp.outcome {
        MutationOutcome::Applied { replaced } => {
            Response::Mutation(WireMutation::Applied { replaced })
        }
        MutationOutcome::NotFound => Response::Mutation(WireMutation::NotFound),
        MutationOutcome::Rejected { estimated_cost, budget } => {
            Response::Error(WireError::Rejected { estimated_cost, budget })
        }
    }
}

/// Maps one in-process range outcome onto a wire entry. `Dropped` (the
/// service died under us) and `Overloaded` both shed the query;
/// entries have a single variant for that.
fn range_entry(resp: &gph_serve::Response) -> SearchEntry {
    match &resp.outcome {
        Outcome::Ids { ids, tau, degraded_from } => SearchEntry::Ids {
            ids: ids.as_ref().clone(),
            tau: *tau,
            degraded_from: *degraded_from,
            from_cache: resp.from_cache,
        },
        Outcome::Rejected { estimated_cost, budget } => {
            SearchEntry::Rejected { estimated_cost: *estimated_cost, budget: *budget }
        }
        Outcome::Overloaded | Outcome::Dropped => SearchEntry::Overloaded,
        Outcome::TopK { .. } => {
            unreachable!("range submissions never produce top-k outcomes")
        }
    }
}

/// Maps a single-query outcome's failure modes onto typed error frames
/// (shared by the range, traced, and top-k resolvers).
fn failure_response(outcome: &Outcome) -> Response {
    match outcome {
        Outcome::Rejected { estimated_cost, budget } => Response::Error(WireError::Rejected {
            estimated_cost: *estimated_cost,
            budget: *budget,
        }),
        Outcome::Overloaded => Response::Error(WireError::Overloaded),
        _ => Response::Error(WireError::ShuttingDown),
    }
}

fn resolve_range(responses: Vec<gph_serve::Response>) -> Response {
    match responses.first() {
        None => Response::Error(WireError::ShuttingDown),
        Some(r) => match &r.outcome {
            Outcome::Ids { .. } => Response::Search(range_entry(r)),
            other => failure_response(other),
        },
    }
}

fn resolve_traced(responses: Vec<gph_serve::Response>) -> Response {
    match responses.first() {
        None => Response::Error(WireError::ShuttingDown),
        Some(r) => match &r.outcome {
            Outcome::Ids { .. } => {
                Response::TracedSearch { entry: range_entry(r), trace: r.trace.as_deref().cloned() }
            }
            other => failure_response(other),
        },
    }
}

fn resolve_batch(responses: Vec<gph_serve::Response>) -> Response {
    Response::Batch(responses.iter().map(range_entry).collect())
}

fn resolve_topk(responses: Vec<gph_serve::Response>) -> Response {
    match responses.first() {
        None => Response::Error(WireError::ShuttingDown),
        Some(r) => match &r.outcome {
            Outcome::TopK { hits, degraded_cap } => Response::TopK {
                hits: hits.as_ref().clone(),
                degraded_cap: *degraded_cap,
                from_cache: r.from_cache,
            },
            other => failure_response(other),
        },
    }
}

//! The TCP front end: a [`NetServer`] accepts `GPHN` connections and
//! serves them from an [`Arc<QueryService>`].
//!
//! Each connection runs **two** threads. The *reader* decodes frames and
//! immediately submits engine work ([`QueryService::submit`] /
//! [`QueryService::submit_batch`] / [`QueryService::submit_topk`]),
//! forwarding the resulting tickets — and synchronously-resolved replies
//! like mutations, pings, and stats — down an in-process queue. The
//! *writer* drains that queue, waits each ticket, and encodes response
//! frames. Decoupling the loops is what makes pipelining real: a slow
//! query parks only the writer; the reader keeps pulling requests off
//! the socket and feeding the worker pool.
//!
//! Admission-control rejections surface as typed [`WireError::Rejected`]
//! error frames (in-band entries inside batch responses). Graceful
//! [`NetServer::shutdown`] stops the accept loop, half-closes every
//! connection's read side, and joins the connection threads — which
//! drains every in-flight ticket through the writers before the sockets
//! close.

use crate::protocol::{
    encode_response, read_frame, Message, Request, Response, SearchEntry, WireError, WireMutation,
};
use crate::NetError;
use gph_serve::{MutationOutcome, Outcome, QueryService, Ticket};
use hamming_core::words_for;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Maximum simultaneously-open connections; further accepts are
    /// answered with a single `Overloaded` error frame and closed.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { max_connections: 64 }
    }
}

/// Point-in-time server counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetServerStats {
    /// Connections accepted over the server's lifetime.
    pub connections_opened: u64,
    /// Connections currently open.
    pub connections_active: u64,
    /// Connections refused because `max_connections` was reached.
    pub connections_refused: u64,
    /// Request frames decoded.
    pub requests: u64,
    /// Response frames written (errors included).
    pub responses: u64,
    /// Error frames among the responses.
    pub errors_sent: u64,
    /// Inbound frames that failed to decode (each closes its connection).
    pub protocol_errors: u64,
    /// Bytes read off sockets (well-formed frames only).
    pub bytes_in: u64,
    /// Bytes written to sockets.
    pub bytes_out: u64,
}

#[derive(Default)]
struct Counters {
    connections_opened: AtomicU64,
    connections_refused: AtomicU64,
    requests: AtomicU64,
    responses: AtomicU64,
    errors_sent: AtomicU64,
    protocol_errors: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
}

struct Shared {
    service: Arc<QueryService>,
    running: AtomicBool,
    counters: Counters,
    /// Read-half handles of open connections, for shutdown's half-close.
    conns: Mutex<HashMap<u64, TcpStream>>,
}

/// One unit of work for a connection's writer thread, in request order.
enum Pending {
    /// Already resolved on the reader thread (ping, stats, mutations,
    /// validation errors).
    Immediate(u64, Response),
    /// A single range search in flight.
    Range(u64, Ticket),
    /// A traced range search in flight; its response carries the trace.
    Traced(u64, Ticket),
    /// A batch of range searches in flight.
    Batch(u64, Ticket),
    /// A top-k search in flight.
    TopK(u64, Ticket),
}

/// A TCP server over a shared [`QueryService`]. Binding spawns the
/// accept loop; dropping (or [`NetServer::shutdown`]) drains in-flight
/// work and joins every thread.
pub struct NetServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    conn_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections served from `service`.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        service: Arc<QueryService>,
        cfg: ServerConfig,
    ) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            service,
            running: AtomicBool::new(true),
            counters: Counters::default(),
            conns: Mutex::new(HashMap::new()),
        });
        let conn_handles = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let conn_handles = Arc::clone(&conn_handles);
            std::thread::Builder::new()
                .name("gph-net-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &conn_handles, cfg))
                .expect("spawning the accept thread")
        };
        Ok(NetServer { shared, addr: local, accept: Some(accept), conn_handles })
    }

    /// The address the server is listening on (with the concrete port
    /// when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service being served.
    pub fn service(&self) -> &Arc<QueryService> {
        &self.shared.service
    }

    /// Counter snapshot.
    pub fn stats(&self) -> NetServerStats {
        let c = &self.shared.counters;
        NetServerStats {
            connections_opened: c.connections_opened.load(Ordering::Relaxed),
            connections_active: self.shared.conns.lock().len() as u64,
            connections_refused: c.connections_refused.load(Ordering::Relaxed),
            requests: c.requests.load(Ordering::Relaxed),
            responses: c.responses.load(Ordering::Relaxed),
            errors_sent: c.errors_sent.load(Ordering::Relaxed),
            protocol_errors: c.protocol_errors.load(Ordering::Relaxed),
            bytes_in: c.bytes_in.load(Ordering::Relaxed),
            bytes_out: c.bytes_out.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, half-closes every connection's read side, drains
    /// all in-flight tickets through the writers, joins every thread,
    /// and returns the final counters.
    pub fn shutdown(mut self) -> NetServerStats {
        self.shutdown_in_place();
        self.stats()
    }

    fn shutdown_in_place(&mut self) {
        self.shared.running.store(false, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            h.join().expect("accept thread never panics");
        }
        // Half-close: readers wake with EOF, stop submitting, and hand
        // their queues to the writers, which drain in-flight tickets and
        // flush the responses before the streams drop.
        for stream in self.shared.conns.lock().values() {
            let _ = stream.shutdown(Shutdown::Read);
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.conn_handles.lock());
        for h in handles {
            h.join().expect("connection threads never panic");
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.shutdown_in_place();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    conn_handles: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    cfg: ServerConfig,
) {
    let mut next_conn_id = 0u64;
    while shared.running.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if shared.conns.lock().len() >= cfg.max_connections {
                    shared.counters.connections_refused.fetch_add(1, Ordering::Relaxed);
                    refuse(stream);
                    continue;
                }
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_nodelay(true);
                let conn_id = next_conn_id;
                next_conn_id += 1;
                shared.counters.connections_opened.fetch_add(1, Ordering::Relaxed);
                if let Ok(handle) = stream.try_clone() {
                    shared.conns.lock().insert(conn_id, handle);
                } else {
                    continue;
                }
                let shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name(format!("gph-net-conn-{conn_id}"))
                    .spawn(move || {
                        connection_loop(conn_id, stream, &shared);
                        shared.conns.lock().remove(&conn_id);
                    })
                    .expect("spawning a connection thread");
                // Reap finished connections while registering the new
                // one, so a long-running server doesn't accumulate one
                // dead JoinHandle per connection ever accepted.
                let mut handles = conn_handles.lock();
                let mut i = 0;
                while i < handles.len() {
                    if handles[i].is_finished() {
                        handles.swap_remove(i).join().expect("connection threads never panic");
                    } else {
                        i += 1;
                    }
                }
                handles.push(spawned);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Best-effort `Overloaded` error frame to a connection over the cap.
fn refuse(mut stream: TcpStream) {
    let frame = encode_response(0, &Response::Error(WireError::Overloaded));
    let _ = stream.write_all(&frame);
    let _ = stream.flush();
}

fn connection_loop(conn_id: u64, mut stream: TcpStream, shared: &Arc<Shared>) {
    let Ok(write_half) = stream.try_clone() else { return };
    let (tx, rx) = crossbeam::channel::unbounded::<Pending>();
    let writer = {
        let shared = Arc::clone(shared);
        std::thread::Builder::new()
            .name(format!("gph-net-write-{conn_id}"))
            .spawn(move || writer_loop(write_half, &rx, &shared))
            .expect("spawning a connection writer thread")
    };

    let index = shared.service.index();
    let expected_words = words_for(index.dim());
    let tau_max = index.tau_max() as u32;

    loop {
        match read_frame(&mut stream) {
            Ok(None) => break, // clean EOF (client done, or shutdown half-close)
            Ok(Some((request_id, message, wire_bytes))) => {
                shared.counters.bytes_in.fetch_add(wire_bytes as u64, Ordering::Relaxed);
                shared.counters.requests.fetch_add(1, Ordering::Relaxed);
                let Message::Request(req) = message else {
                    shared.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    let _ = tx.send(Pending::Immediate(
                        request_id,
                        Response::Error(WireError::Malformed(
                            "received a response frame on the server".into(),
                        )),
                    ));
                    break;
                };
                let pending =
                    handle_request(request_id, req, &shared.service, expected_words, tau_max);
                if tx.send(pending).is_err() {
                    break; // writer died (socket gone)
                }
            }
            Err(err) => {
                // Framing is lost; report once and close. Only protocol
                // errors get a reply — on raw socket errors the peer is
                // already gone.
                if let NetError::Protocol(msg) = &err {
                    shared.counters.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    let _ = tx.send(Pending::Immediate(
                        0,
                        Response::Error(WireError::Malformed(msg.clone())),
                    ));
                }
                break;
            }
        }
    }
    drop(tx); // writer drains what's queued, then exits
    writer.join().expect("writer threads never panic");
    let _ = stream.shutdown(Shutdown::Both);
}

/// Turns one request into its pending reply, submitting engine work
/// without waiting for it.
fn handle_request(
    id: u64,
    req: Request,
    service: &Arc<QueryService>,
    expected_words: usize,
    tau_max: u32,
) -> Pending {
    let unsupported =
        |msg: String| Pending::Immediate(id, Response::Error(WireError::Unsupported(msg)));
    match req {
        Request::Ping => Pending::Immediate(id, Response::Pong),
        Request::Stats => {
            let index = service.index();
            Pending::Immediate(
                id,
                Response::Stats {
                    rows: index.len() as u64,
                    dim: index.dim() as u32,
                    tau_max,
                    shards: index.num_shards() as u32,
                    stats: service.snapshot_stats(),
                },
            )
        }
        Request::Search { tau, query } => {
            if query.len() != expected_words {
                return unsupported(format!(
                    "query has {} words, index needs {expected_words}",
                    query.len()
                ));
            }
            if tau > tau_max {
                return unsupported(format!("tau {tau} exceeds the index tau_max {tau_max}"));
            }
            Pending::Range(id, service.submit(&query, tau))
        }
        Request::TopK { k, query } => {
            if query.len() != expected_words {
                return unsupported(format!(
                    "query has {} words, index needs {expected_words}",
                    query.len()
                ));
            }
            Pending::TopK(id, service.submit_topk(&query, k as usize))
        }
        Request::BatchSearch { tau, queries } => {
            if let Some(q) = queries.iter().find(|q| q.len() != expected_words) {
                return unsupported(format!(
                    "batch query has {} words, index needs {expected_words}",
                    q.len()
                ));
            }
            if tau > tau_max {
                return unsupported(format!("tau {tau} exceeds the index tau_max {tau_max}"));
            }
            let refs: Vec<&[u64]> = queries.iter().map(Vec::as_slice).collect();
            Pending::Batch(id, service.submit_batch(&refs, tau))
        }
        Request::Insert { id: rec, row } => {
            if row.len() != expected_words {
                return unsupported(format!(
                    "row has {} words, index needs {expected_words}",
                    row.len()
                ));
            }
            let resp = match service.insert(rec, &row) {
                Ok(resp) => mutation_response(resp),
                Err(e) => Response::Error(WireError::Engine(e.to_string())),
            };
            Pending::Immediate(id, resp)
        }
        Request::Upsert { id: rec, row } => {
            if row.len() != expected_words {
                return unsupported(format!(
                    "row has {} words, index needs {expected_words}",
                    row.len()
                ));
            }
            let resp = match service.upsert(rec, &row) {
                Ok(resp) => mutation_response(resp),
                Err(e) => Response::Error(WireError::Engine(e.to_string())),
            };
            Pending::Immediate(id, resp)
        }
        Request::Delete { id: rec } => {
            Pending::Immediate(id, mutation_response(service.delete(rec)))
        }
        Request::Metrics => {
            Pending::Immediate(id, Response::Metrics { text: service.metrics_text() })
        }
        Request::TracedSearch { tau, query } => {
            if query.len() != expected_words {
                return unsupported(format!(
                    "query has {} words, index needs {expected_words}",
                    query.len()
                ));
            }
            if tau > tau_max {
                return unsupported(format!("tau {tau} exceeds the index tau_max {tau_max}"));
            }
            Pending::Traced(id, service.submit_traced(&query, tau))
        }
    }
}

/// Maps a service mutation response onto the wire.
fn mutation_response(resp: gph_serve::MutationResponse) -> Response {
    match resp.outcome {
        MutationOutcome::Applied { replaced } => {
            Response::Mutation(WireMutation::Applied { replaced })
        }
        MutationOutcome::NotFound => Response::Mutation(WireMutation::NotFound),
        MutationOutcome::Rejected { estimated_cost, budget } => {
            Response::Error(WireError::Rejected { estimated_cost, budget })
        }
    }
}

/// Maps one in-process range outcome onto a wire entry. `Dropped` (the
/// service died under us) and `Overloaded` both shed the query;
/// entries have a single variant for that.
fn range_entry(resp: &gph_serve::Response) -> SearchEntry {
    match &resp.outcome {
        Outcome::Ids { ids, tau, degraded_from } => SearchEntry::Ids {
            ids: ids.as_ref().clone(),
            tau: *tau,
            degraded_from: *degraded_from,
            from_cache: resp.from_cache,
        },
        Outcome::Rejected { estimated_cost, budget } => {
            SearchEntry::Rejected { estimated_cost: *estimated_cost, budget: *budget }
        }
        Outcome::Overloaded | Outcome::Dropped => SearchEntry::Overloaded,
        Outcome::TopK { .. } => {
            unreachable!("range submissions never produce top-k outcomes")
        }
    }
}

fn writer_loop(
    stream: TcpStream,
    rx: &crossbeam::channel::Receiver<Pending>,
    shared: &Arc<Shared>,
) {
    let mut out = std::io::BufWriter::new(stream);
    for pending in rx.iter() {
        let (request_id, response) = resolve(pending);
        let is_error = matches!(response, Response::Error(_));
        let frame = encode_response(request_id, &response);
        if out.write_all(&frame).is_err() {
            let _ = out.get_ref().shutdown(Shutdown::Both);
            return; // peer gone; remaining queue entries are dropped
        }
        shared.counters.bytes_out.fetch_add(frame.len() as u64, Ordering::Relaxed);
        shared.counters.responses.fetch_add(1, Ordering::Relaxed);
        if is_error {
            shared.counters.errors_sent.fetch_add(1, Ordering::Relaxed);
        }
        if rx.is_empty() && out.flush().is_err() {
            let _ = out.get_ref().shutdown(Shutdown::Both);
            return;
        }
    }
    let _ = out.flush();
}

/// Waits out a pending reply's ticket (if any) and produces the frame
/// body.
fn resolve(pending: Pending) -> (u64, Response) {
    match pending {
        Pending::Immediate(id, resp) => (id, resp),
        Pending::Range(id, ticket) => {
            let responses = ticket.wait();
            let resp = match responses.first() {
                None => Response::Error(WireError::ShuttingDown),
                Some(r) => match &r.outcome {
                    Outcome::Ids { .. } => Response::Search(range_entry(r)),
                    Outcome::Rejected { estimated_cost, budget } => {
                        Response::Error(WireError::Rejected {
                            estimated_cost: *estimated_cost,
                            budget: *budget,
                        })
                    }
                    Outcome::Overloaded => Response::Error(WireError::Overloaded),
                    Outcome::Dropped => Response::Error(WireError::ShuttingDown),
                    Outcome::TopK { .. } => {
                        unreachable!("range submissions never produce top-k outcomes")
                    }
                },
            };
            (id, resp)
        }
        Pending::Traced(id, ticket) => {
            let responses = ticket.wait();
            let resp = match responses.first() {
                None => Response::Error(WireError::ShuttingDown),
                Some(r) => match &r.outcome {
                    Outcome::Ids { .. } => Response::TracedSearch {
                        entry: range_entry(r),
                        trace: r.trace.as_deref().cloned(),
                    },
                    Outcome::Rejected { estimated_cost, budget } => {
                        Response::Error(WireError::Rejected {
                            estimated_cost: *estimated_cost,
                            budget: *budget,
                        })
                    }
                    Outcome::Overloaded => Response::Error(WireError::Overloaded),
                    Outcome::Dropped => Response::Error(WireError::ShuttingDown),
                    Outcome::TopK { .. } => {
                        unreachable!("range submissions never produce top-k outcomes")
                    }
                },
            };
            (id, resp)
        }
        Pending::Batch(id, ticket) => {
            let entries = ticket.wait().iter().map(range_entry).collect();
            (id, Response::Batch(entries))
        }
        Pending::TopK(id, ticket) => {
            let responses = ticket.wait();
            let resp = match responses.first() {
                None => Response::Error(WireError::ShuttingDown),
                Some(r) => match &r.outcome {
                    Outcome::TopK { hits, degraded_cap } => Response::TopK {
                        hits: hits.as_ref().clone(),
                        degraded_cap: *degraded_cap,
                        from_cache: r.from_cache,
                    },
                    Outcome::Rejected { estimated_cost, budget } => {
                        Response::Error(WireError::Rejected {
                            estimated_cost: *estimated_cost,
                            budget: *budget,
                        })
                    }
                    Outcome::Overloaded => Response::Error(WireError::Overloaded),
                    Outcome::Dropped => Response::Error(WireError::ShuttingDown),
                    Outcome::Ids { .. } => {
                        unreachable!("top-k submissions never produce range outcomes")
                    }
                },
            };
            (id, resp)
        }
    }
}

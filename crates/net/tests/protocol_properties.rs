//! Wire-protocol properties, mirroring the `GPHE` snapshot corruption
//! proptests: arbitrary request/response frames round-trip byte-exactly
//! through encode → decode → re-encode, and **every** single-byte
//! corruption or truncation of a frame is rejected as a protocol error
//! (never a panic, never a silently-wrong decode).

use gph_net::protocol::{
    decode_frame, encode_request, encode_response, read_frame, Message, NodeHealth, NodeScrape,
    Request, Response, SearchEntry, WireError, WireMutation,
};
use gph_serve::{AdmissionStats, CacheStats, ServiceSnapshotStats, ServiceStats};
use proptest::prelude::*;

fn words(max: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(any::<u64>(), 1..=max)
}

/// Deterministic stats from one seed (floats kept finite so equality
/// comparisons stay meaningful; byte-exactness holds regardless).
fn stats_from_seed(seed: u64) -> ServiceSnapshotStats {
    let mut x = seed;
    let mut next = move || {
        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        x >> 17
    };
    ServiceSnapshotStats {
        service: ServiceStats {
            responses: next(),
            executed: next(),
            batches: next(),
            queue_rejections: next(),
            mutations: next(),
            qps: next() as f64 / 128.0,
            latency_p50_ns: next(),
            latency_p95_ns: next(),
            latency_p99_ns: next(),
            latency_mean_ns: next() as f64 / 64.0,
            latency_max_ns: next(),
            candidates_per_query: next() as f64 / 32.0,
            scanned_per_query: next() as f64 / 24.0,
            results_per_query: next() as f64 / 16.0,
        },
        cache: CacheStats {
            hits: next(),
            misses: next(),
            invalidations: next(),
            len: next() as usize,
            capacity: next() as usize,
        },
        admission: AdmissionStats { admitted: next(), degraded: next(), rejected: next() },
    }
}

fn request_strategy() -> impl Strategy<Value = Request> {
    let batch = (1usize..=4, 1usize..=4)
        .prop_flat_map(|(n, w)| prop::collection::vec(prop::collection::vec(any::<u64>(), w), n));
    ((0u8..13, any::<u32>(), any::<u32>()), words(5), batch).prop_map(|((tag, a, b), q, qs)| {
        match tag {
            0 => Request::Ping,
            1 => Request::Search { tau: a, query: q },
            2 => Request::TopK { k: a, query: q },
            3 => Request::BatchSearch { tau: a, queries: qs },
            4 => Request::Insert { id: b, row: q },
            5 => Request::Delete { id: b },
            6 => Request::Upsert { id: b, row: q },
            7 => Request::Metrics,
            8 => {
                Request::TracedSearch { tau: a, query: q, trace_id: ((a as u64) << 32) | b as u64 }
            }
            9 => Request::AggregateMetrics,
            10 => Request::Health,
            11 => Request::SlowQueries { max: a },
            _ => Request::Stats,
        }
    })
}

fn entry_strategy() -> impl Strategy<Value = SearchEntry> {
    (
        (0u8..3, any::<bool>(), any::<bool>()),
        (any::<u32>(), any::<u32>()),
        prop::collection::vec(any::<u32>(), 0..6),
        (any::<u32>(), any::<u32>()),
    )
        .prop_map(|((tag, from_cache, degraded), (tau, from), ids, (c, bgt))| match tag {
            0 => SearchEntry::Ids { ids, tau, degraded_from: degraded.then_some(from), from_cache },
            1 => SearchEntry::Rejected { estimated_cost: c as f64 / 8.0, budget: bgt as f64 / 8.0 },
            _ => SearchEntry::Overloaded,
        })
}

/// Deterministic query trace from one seed, exercising multiple shards,
/// segments, and the memtable sentinel.
fn trace_from_seed(seed: u64) -> gph_obs::QueryTrace {
    let mut x = seed;
    let mut next = move || {
        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        x >> 17
    };
    let mut shards = Vec::new();
    for shard in 0..(seed % 3) as u32 {
        let mut segments = Vec::new();
        for segment in 0..(next() % 3) as u32 {
            segments.push(gph_obs::SegmentTrace {
                segment: if segment == 2 { gph_obs::trace::MEMTABLE_SEGMENT } else { segment },
                rows: next(),
                phases: gph_obs::PhaseNanos {
                    alloc_ns: next(),
                    enumerate_ns: next(),
                    probe_ns: next(),
                    verify_ns: next(),
                    scan_ns: next(),
                },
                n_signatures: next(),
                sum_postings: next(),
                n_scanned: next(),
                n_candidates: next(),
                n_results: next(),
            });
        }
        shards.push(gph_obs::ShardTrace { shard, total_ns: next(), segments });
    }
    gph_obs::QueryTrace {
        trace_id: next(),
        node: if seed.is_multiple_of(3) {
            String::new()
        } else {
            format!("10.0.0.{}:9000", seed % 250)
        },
        started_unix_ns: next(),
        tau: (seed % 31) as u32,
        total_ns: next(),
        shards,
    }
}

/// Deterministic fleet-observability payloads from one seed.
fn health_from_seed(seed: u64) -> NodeHealth {
    let mut x = seed;
    let mut next = move || {
        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        x >> 17
    };
    NodeHealth {
        slots: (0..(seed % 4) as u32).map(|_| next() as u32).collect(),
        generation: next(),
        rows: next(),
        queue_depth: next() as u32,
        queue_capacity: next() as u32,
        degraded: seed.is_multiple_of(2),
    }
}

fn scrapes_from_seed(seed: u64) -> Vec<NodeScrape> {
    (0..seed % 4)
        .map(|i| NodeScrape {
            node: format!("10.0.0.{i}:9000"),
            error: (i % 2 == 0).then(|| format!("refused {i}")),
            text: if i % 2 == 0 { String::new() } else { format!("gph_up {i}\n") },
        })
        .collect()
}

fn response_strategy() -> impl Strategy<Value = Response> {
    (
        (0u8..12, any::<u64>(), any::<bool>(), any::<bool>()),
        entry_strategy(),
        prop::collection::vec(entry_strategy(), 0..4),
        prop::collection::vec((any::<u32>(), any::<u32>()), 0..6),
        (any::<u32>(), any::<u32>(), 0u8..6),
    )
        .prop_map(|((tag, seed, flag_a, flag_b), entry, entries, hits, (a, b, err_tag))| {
            match tag {
                0 => Response::Pong,
                1 => Response::Search(entry),
                2 => Response::TopK { hits, degraded_cap: flag_a.then_some(a), from_cache: flag_b },
                3 => Response::Batch(entries),
                4 => Response::Mutation(if flag_a {
                    WireMutation::Applied { replaced: flag_b }
                } else {
                    WireMutation::NotFound
                }),
                5 => Response::Stats {
                    rows: seed,
                    dim: a,
                    tau_max: b,
                    shards: a ^ b,
                    stats: stats_from_seed(seed),
                },
                6 => Response::Metrics {
                    text: format!("# HELP gph_x_{a} X.\n# TYPE gph_x_{a} counter\ngph_x_{a} {b}\n"),
                },
                7 => Response::TracedSearch { entry, trace: flag_a.then(|| trace_from_seed(seed)) },
                8 => Response::Health(health_from_seed(seed)),
                9 => Response::SlowQueries {
                    traces: (0..seed % 3).map(|i| trace_from_seed(seed ^ i)).collect(),
                },
                10 => Response::AggregateMetrics {
                    merged: format!("# TYPE gph_up gauge\ngph_up {a}\n"),
                    nodes: scrapes_from_seed(seed),
                },
                _ => Response::Error(match err_tag {
                    0 => WireError::Malformed(format!("m{a}")),
                    1 => WireError::Unsupported(format!("u{b}")),
                    2 => WireError::Rejected {
                        estimated_cost: a as f64 / 4.0,
                        budget: b as f64 / 4.0,
                    },
                    3 => WireError::Overloaded,
                    4 => WireError::Engine(format!("e{a}")),
                    _ => WireError::ShuttingDown,
                }),
            }
        })
}

/// Encodes the message under `id`, regardless of direction.
fn encode_message(id: u64, msg: &Message) -> Vec<u8> {
    match msg {
        Message::Request(req) => encode_request(id, req),
        Message::Response(resp) => encode_response(id, resp),
    }
}

fn message_strategy() -> impl Strategy<Value = Message> {
    (any::<bool>(), request_strategy(), response_strategy()).prop_map(|(is_req, req, resp)| {
        if is_req {
            Message::Request(req)
        } else {
            Message::Response(resp)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode → re-encode is the identity on bytes, and decode
    /// recovers the exact message and request id.
    #[test]
    fn frames_roundtrip_byte_exactly(id in any::<u64>(), msg in message_strategy()) {
        let bytes = encode_message(id, &msg);
        let (got_id, got_msg) = decode_frame(&bytes).expect("well-formed frame decodes");
        prop_assert_eq!(got_id, id);
        prop_assert_eq!(&got_msg, &msg);
        prop_assert_eq!(encode_message(got_id, &got_msg), bytes);
        // The streaming reader agrees with the buffer decoder.
        let mut stream: &[u8] = &bytes;
        let (sid, smsg, n) = read_frame(&mut stream).expect("stream decode").expect("one frame");
        prop_assert_eq!(sid, id);
        prop_assert_eq!(smsg, msg);
        prop_assert_eq!(n, bytes.len());
        prop_assert!(read_frame(&mut stream).expect("clean EOF").is_none());
    }

    /// Flipping any single byte anywhere in a frame is detected.
    #[test]
    fn any_single_byte_corruption_is_rejected(
        id in any::<u64>(),
        msg in message_strategy(),
        at in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let mut bytes = encode_message(id, &msg);
        let i = at.index(bytes.len());
        bytes[i] ^= xor;
        prop_assert!(decode_frame(&bytes).is_err(), "flip at byte {} went undetected", i);
        let mut stream: &[u8] = &bytes;
        prop_assert!(read_frame(&mut stream).is_err(), "stream flip at byte {} undetected", i);
    }

    /// Truncating a frame at any length is detected.
    #[test]
    fn any_truncation_is_rejected(
        id in any::<u64>(),
        msg in message_strategy(),
        at in any::<prop::sample::Index>(),
    ) {
        let bytes = encode_message(id, &msg);
        let cut = at.index(bytes.len()); // 0..len, never the full frame
        prop_assert!(decode_frame(&bytes[..cut]).is_err(), "cut at {} went undetected", cut);
        // The streaming reader treats a zero-byte stream as clean EOF
        // (that is a frame *boundary*); any partial frame is an error.
        if cut > 0 {
            let mut stream: &[u8] = &bytes[..cut];
            prop_assert!(read_frame(&mut stream).is_err(), "stream cut at {} undetected", cut);
        }
    }

    /// Appending trailing garbage to a frame is detected by the
    /// exactly-one-frame decoder.
    #[test]
    fn trailing_bytes_are_rejected(
        id in any::<u64>(),
        msg in message_strategy(),
        extra in 1usize..16,
    ) {
        let mut bytes = encode_message(id, &msg);
        bytes.extend(std::iter::repeat_n(0xA5, extra));
        prop_assert!(decode_frame(&bytes).is_err());
    }
}

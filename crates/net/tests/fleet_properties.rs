//! Fleet-routing properties: arbitrary shard→node maps and id sets
//! round-trip through the manifest wire codec, client-side routing
//! agrees with [`ShardedIndex::shard_of`] for every id, and every
//! manifest a client can observe partitions the slot space exactly —
//! no orphaned or doubly-owned shard survives validation.

use gph_net::protocol::{decode_frame, encode_request, encode_response};
use gph_net::{
    FleetClient, FleetConfig, FleetManifest, FleetNode, GphClient, Message, MetastoreServer,
    Request, Response, ServerConfig,
};
use gph_serve::ShardedIndex;
use proptest::prelude::*;

const MAX_GROUPS: usize = 4;

fn addrs_for(group: usize, seed: u64) -> Vec<String> {
    (0..1 + (seed % 3) as usize)
        .map(|i| format!("10.{group}.{i}.{}:{}", seed % 251, 7000 + (seed % 1000)))
        .collect()
}

/// Builds a valid manifest from an arbitrary owner map: slot `s` is
/// owned by group `owners[s]`; groups materialize in first-appearance
/// order, so every generated manifest partitions `0..owners.len()`.
fn build_manifest(version: u64, owners: &[usize], seeds: &[u64; MAX_GROUPS]) -> FleetManifest {
    let mut nodes: Vec<FleetNode> = Vec::new();
    let mut index = [usize::MAX; MAX_GROUPS];
    for (slot, &g) in owners.iter().enumerate() {
        if index[g] == usize::MAX {
            index[g] = nodes.len();
            nodes.push(FleetNode { slots: Vec::new(), addrs: addrs_for(g, seeds[g]) });
        }
        nodes[index[g]].slots.push(slot as u32);
    }
    FleetManifest { version, n_shards: owners.len() as u32, nodes }
}

fn manifest_strategy() -> impl Strategy<Value = (FleetManifest, Vec<usize>)> {
    (
        1u64..u64::MAX / 2,
        prop::collection::vec(0usize..MAX_GROUPS, 1..48),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(|(version, owners, s)| {
            (build_manifest(version, &owners, &[s.0, s.1, s.2, s.3]), owners)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary manifests survive the wire: publish request and fetch
    /// response frames decode back to the exact same map.
    #[test]
    fn manifest_codec_roundtrips(
        generated in manifest_strategy(),
        request_id in any::<u64>(),
    ) {
        let (manifest, _) = generated;
        prop_assert!(manifest.validate().is_ok(), "generator must emit valid manifests");

        let frame = encode_request(request_id, &Request::PublishManifest {
            manifest: manifest.clone(),
        });
        let (rid, msg) = decode_frame(&frame).expect("well-formed frame");
        prop_assert_eq!(rid, request_id);
        match msg {
            Message::Request(Request::PublishManifest { manifest: m }) => {
                prop_assert_eq!(&m, &manifest)
            }
            other => panic!("decoded {other:?}"),
        }

        let frame = encode_response(request_id, &Response::Manifest {
            manifest: Some(manifest.clone()),
        });
        let (rid, msg) = decode_frame(&frame).expect("well-formed frame");
        prop_assert_eq!(rid, request_id);
        match msg {
            Message::Response(Response::Manifest { manifest: Some(m) }) => {
                prop_assert_eq!(&m, &manifest)
            }
            other => panic!("decoded {other:?}"),
        }
    }

    /// For every id: the manifest's owner of `shard_of(id)` is exactly
    /// the group the owner map assigned — one owner, no orphans — so
    /// client-side routing agrees with how the in-process index shards.
    #[test]
    fn routing_agrees_with_the_index_id_hash(
        generated in manifest_strategy(),
        ids in prop::collection::vec(any::<u32>(), 1..64),
    ) {
        let (manifest, owners) = generated;
        for id in ids {
            let slot = ShardedIndex::shard_of(id, manifest.n_shards as usize) as u32;
            let ni = manifest.node_for_slot(slot).expect("no orphaned slot");
            prop_assert!(manifest.nodes[ni].slots.contains(&slot));
            // The owner is the group the map assigned, and it is unique.
            let claiming: Vec<usize> = (0..manifest.nodes.len())
                .filter(|&i| manifest.nodes[i].slots.contains(&slot))
                .collect();
            prop_assert_eq!(claiming, vec![ni], "slot {} must have one owner", slot);
            // Addresses encode the group in their second octet, so this
            // pins that routing landed on the *assigned* group, not just
            // any consistent one.
            let assigned = owners[slot as usize];
            prop_assert!(
                manifest.nodes[ni].addrs[0].starts_with(&format!("10.{assigned}.")),
                "slot {} routed to the wrong group", slot
            );
        }
    }

    /// Breaking the partition breaks validation: dropping a slot orphans
    /// it, double-assigning a slot is refused, and so is a node with no
    /// addresses.
    #[test]
    fn broken_partitions_fail_validation(generated in manifest_strategy()) {
        let (manifest, _) = generated;
        let mut orphaned = manifest.clone();
        let victim = orphaned.nodes[0].slots.pop().expect("nodes own at least one slot");
        prop_assert!(
            orphaned.validate().is_err(),
            "slot {} orphaned but validate passed", victim
        );

        let mut doubled = manifest.clone();
        if doubled.nodes.len() >= 2 {
            let stolen = doubled.nodes[0].slots[0];
            doubled.nodes[1].slots.push(stolen);
            prop_assert!(
                doubled.validate().is_err(),
                "slot {} doubly owned but validate passed", stolen
            );
        }

        let mut unaddressed = manifest;
        unaddressed.nodes[0].addrs.clear();
        prop_assert!(unaddressed.validate().is_err());
    }
}

/// Live agreement: a [`FleetClient`] routing off a real metastore maps
/// every id to the same slot and node group as recomputing
/// [`ShardedIndex::shard_of`] against the manifest by hand.
#[test]
fn fleet_client_routing_matches_the_manifest() {
    let owners: Vec<usize> = (0..11).map(|s| s % 3).collect();
    let manifest = build_manifest(9, &owners, &[3, 14, 15, 92]);
    let metastore = MetastoreServer::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    GphClient::connect(metastore.local_addr()).unwrap().publish_manifest(&manifest).unwrap();
    let fleet =
        FleetClient::connect(&metastore.local_addr().to_string(), FleetConfig::default()).unwrap();

    assert_eq!(fleet.manifest(), manifest);
    for id in (0..50_000u32).step_by(71) {
        let slot = ShardedIndex::shard_of(id, manifest.n_shards as usize) as u32;
        assert_eq!(fleet.slot_of(id), slot, "id {id}");
        assert_eq!(fleet.node_for(id), manifest.node_for_slot(slot), "id {id}");
        assert!(fleet.node_for(id).is_some(), "id {id} orphaned");
    }
    metastore.shutdown();
}

//! End-to-end network equivalence: a server on an ephemeral loopback
//! port, driven by 4 concurrent pipelined clients issuing
//! search/topk/batch/insert/delete/upsert, must answer every request
//! with exactly what the same call produces on the in-process
//! [`QueryService`].

use gph::engine::GphConfig;
use gph::partition_opt::PartitionStrategy;
use gph_net::{BatchEntry, GphClient, NetError, NetServer, ServerConfig, WireError, WireMutation};
use gph_serve::{
    AdmissionConfig, Outcome, OverBudgetPolicy, QueryService, ServiceConfig, ShardedIndex,
};
use hamming_core::distance::hamming;
use hamming_core::{BitVector, Dataset};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

const DIM: usize = 64;
const TAU: u32 = 6;
const CLIENTS: usize = 4;
const DEPTH: usize = 8;

fn fixture(n: usize, seed: u64) -> (Arc<ShardedIndex>, Dataset) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut ds = Dataset::new(DIM);
    for _ in 0..n {
        let v = BitVector::from_bits((0..DIM).map(|_| rng.random_bool(0.4)));
        ds.push(&v).unwrap();
    }
    let mut cfg = GphConfig::new(4, 12);
    cfg.strategy = PartitionStrategy::RandomShuffle { seed: 7 };
    (Arc::new(ShardedIndex::build(&ds, 3, &cfg).unwrap()), ds)
}

/// The marker row each client mutates: high bit set plus the id in the
/// low word — far from every dataset row (asserted below), so mutations
/// cannot perturb concurrent searches at `TAU`.
fn marker_row(id: u32) -> Vec<u64> {
    vec![0x8000_0000_0000_0000u64 | id as u64]
}

#[test]
fn four_pipelined_clients_match_the_in_process_service() {
    let (index, ds) = fixture(400, 42);
    let service = Arc::new(QueryService::new(Arc::clone(&index), ServiceConfig::default()));
    let server = NetServer::bind("127.0.0.1:0", Arc::clone(&service), ServerConfig::default())
        .expect("bind ephemeral loopback port");
    let addr = server.local_addr();

    // Guard the concurrency design: every marker row must sit further
    // than TAU from every dataset row, so client mutations are invisible
    // to the other clients' searches.
    for t in 0..CLIENTS as u32 {
        for j in 0..40 {
            let row = marker_row(10_000 + t * 1_000 + j);
            for i in 0..ds.len() {
                assert!(hamming(&row, ds.row(i)) > TAU, "fixture violates isolation");
            }
        }
    }

    let threads: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let service = Arc::clone(&service);
            let ds = ds.clone();
            std::thread::spawn(move || {
                let client = GphClient::connect(addr).expect("connect");
                let base = 10_000 + t as u32 * 1_000;

                // Pipelined searches at depth DEPTH, compared
                // one-for-one with the in-process service.
                let queries: Vec<usize> = (0..32).map(|i| (t * 97 + i * 13) % ds.len()).collect();
                let mut tickets = std::collections::VecDeque::new();
                for &qi in &queries {
                    tickets.push_back((qi, client.submit_search(ds.row(qi), TAU).unwrap()));
                    if tickets.len() >= DEPTH {
                        let (qi, ticket) = tickets.pop_front().unwrap();
                        check_search(&service, &ds, qi, ticket.wait().unwrap());
                    }
                }
                for (qi, ticket) in tickets {
                    check_search(&service, &ds, qi, ticket.wait().unwrap());
                }

                // Top-k, remote vs in-process.
                for &qi in queries.iter().take(8) {
                    let remote = client.topk(ds.row(qi), 5).unwrap();
                    let direct = service.query_topk(ds.row(qi), 5);
                    match direct.outcome {
                        Outcome::TopK { hits, degraded_cap } => {
                            assert_eq!(remote.hits, *hits);
                            assert_eq!(remote.degraded_cap, degraded_cap);
                        }
                        other => panic!("unexpected direct outcome {other:?}"),
                    }
                }

                // A batch is one wire frame and one service job; entries
                // come back in submission order.
                let batch_refs: Vec<&[u64]> =
                    queries.iter().take(6).map(|&qi| ds.row(qi)).collect();
                let entries = client.batch_search(&batch_refs, TAU).unwrap();
                assert_eq!(entries.len(), batch_refs.len());
                for (&qi, entry) in queries.iter().zip(&entries) {
                    match entry {
                        BatchEntry::Ids(r) => {
                            assert_eq!(r.ids, index_search(&service, &ds, qi), "batch entry")
                        }
                        other => panic!("unexpected batch entry {other:?}"),
                    }
                }

                // Mutations on this client's private id range, pipelined,
                // each outcome equal to what the in-process call reports.
                for j in 0..20 {
                    let id = base + j;
                    let row = marker_row(id);
                    assert_eq!(
                        client.insert(id, &row).unwrap(),
                        WireMutation::Applied { replaced: false }
                    );
                    // tau=0 search sees exactly the inserted row.
                    let seen = client.search(&row, 0).unwrap();
                    assert_eq!(seen.ids, vec![id], "inserted row must be visible");
                    // Duplicate insert is an engine error remotely, an
                    // Err on the in-process service.
                    assert!(service.index().contains(id));
                    match client.insert(id, &row) {
                        Err(NetError::Remote(WireError::Engine(_))) => {}
                        other => panic!("duplicate insert gave {other:?}"),
                    }
                    assert_eq!(
                        client.upsert(id, &row).unwrap(),
                        WireMutation::Applied { replaced: true }
                    );
                    assert_eq!(
                        client.delete(id).unwrap(),
                        WireMutation::Applied { replaced: true }
                    );
                    assert_eq!(client.delete(id).unwrap(), WireMutation::NotFound);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client threads succeed");
    }

    // After the storm: the fleet holds exactly the original rows again,
    // and a remote stats round-trip agrees with the in-process state.
    assert_eq!(service.index().len(), 400);
    let client = GphClient::connect(addr).unwrap();
    let remote = client.stats().unwrap();
    assert_eq!(remote.rows, 400);
    assert_eq!(remote.dim, DIM as u32);
    assert_eq!(remote.shards, 3);
    assert_eq!(remote.tau_max, service.index().tau_max() as u32);
    assert!(remote.stats.service.responses > 0);
    assert!(client.ping().is_ok());

    let stats = server.shutdown();
    assert!(stats.connections_opened > CLIENTS as u64);
    assert_eq!(stats.protocol_errors, 0, "no malformed traffic in this test");
    assert!(stats.requests > 0 && stats.responses > 0);
    assert!(stats.bytes_in > 0 && stats.bytes_out > 0);
}

fn index_search(service: &QueryService, ds: &Dataset, qi: usize) -> Vec<u32> {
    match service.query(ds.row(qi), TAU).outcome {
        Outcome::Ids { ids, .. } => ids.as_ref().clone(),
        other => panic!("unexpected direct outcome {other:?}"),
    }
}

fn check_search(service: &QueryService, ds: &Dataset, qi: usize, remote: gph_net::RangeResult) {
    assert_eq!(remote.ids, index_search(service, ds, qi), "query {qi}");
    assert_eq!(remote.tau, TAU);
    assert_eq!(remote.degraded_from, None);
}

/// The ISSUE's acceptance check: a traced network query returns its own
/// per-phase trace whose phase-time sum fits inside the measured
/// end-to-end latency, and a Metrics scrape over the wire parses as
/// Prometheus text containing the core series.
#[test]
fn traced_search_and_metrics_over_the_wire() {
    let (index, ds) = fixture(400, 46);
    let service = Arc::new(QueryService::new(Arc::clone(&index), ServiceConfig::default()));
    let server =
        NetServer::bind("127.0.0.1:0", Arc::clone(&service), ServerConfig::default()).unwrap();
    let client = GphClient::connect(server.local_addr()).unwrap();

    for qi in [0usize, 31, 77] {
        let t0 = std::time::Instant::now();
        let traced = client.search_traced(ds.row(qi), TAU).unwrap();
        let e2e_ns = t0.elapsed().as_nanos() as u64;
        assert_eq!(traced.result.ids, index.search(ds.row(qi), TAU), "query {qi}");
        let trace = traced.trace.expect("executed traced searches carry a trace");
        assert_eq!(trace.tau, TAU);
        assert_eq!(trace.shards.len(), index.num_shards());
        let phase_sum = trace.phase_totals().total();
        assert!(
            phase_sum <= trace.total_ns && trace.total_ns <= e2e_ns,
            "phase sum {phase_sum} ≤ engine wall {} ≤ end-to-end {e2e_ns}",
            trace.total_ns
        );
    }
    // Traced searches bypass the cache on lookup but still store, so a
    // plain repeat of the same query is a hit.
    assert!(client.search(ds.row(0), TAU).unwrap().from_cache);

    let text = client.metrics().unwrap();
    for series in [
        "# TYPE gph_responses_total counter",
        "# TYPE gph_latency_ns summary",
        "# TYPE gph_cache_hits gauge",
        "gph_index_rows 400",
        "gph_index_shards 3",
        "gph_query_phase_ns{phase=\"verify\",quantile=\"0.99\"}",
    ] {
        assert!(text.contains(series), "exposition missing {series:?}:\n{text}");
    }
    // Every non-comment line is `name{labels} value` with a finite value.
    for line in text.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
        let (_, value) = line.rsplit_once(' ').expect("sample line has a value");
        assert!(value.parse::<f64>().unwrap().is_finite(), "bad sample line {line:?}");
    }
}

#[test]
fn admission_rejections_travel_as_typed_error_frames() {
    let (index, ds) = fixture(200, 43);
    let cfg = ServiceConfig {
        admission: AdmissionConfig { cost_budget: 0.0, policy: OverBudgetPolicy::Reject },
        ..ServiceConfig::default()
    };
    let service = Arc::new(QueryService::new(index, cfg));
    let server =
        NetServer::bind("127.0.0.1:0", Arc::clone(&service), ServerConfig::default()).unwrap();
    let client = GphClient::connect(server.local_addr()).unwrap();

    let direct = service.query(ds.row(0), TAU);
    let (direct_cost, direct_budget) = match direct.outcome {
        Outcome::Rejected { estimated_cost, budget } => (estimated_cost, budget),
        other => panic!("expected a rejection, got {other:?}"),
    };
    let err = client.search(ds.row(0), TAU).expect_err("zero budget rejects");
    let (cost, budget) = err.rejected().expect("typed rejection");
    assert_eq!((cost, budget), (direct_cost, direct_budget));

    // Mutations are priced too.
    let err = client.insert(99_999, &marker_row(99_999)).expect_err("zero budget");
    assert!(err.rejected().is_some());

    // Top-k rejections carry the same shape.
    let err = client.topk(ds.row(1), 3).expect_err("zero budget rejects top-k");
    assert!(err.rejected().is_some());
}

#[test]
fn structural_misuse_gets_unsupported_errors_and_the_connection_survives() {
    let (index, ds) = fixture(150, 44);
    let service = Arc::new(QueryService::new(index, ServiceConfig::default()));
    let server =
        NetServer::bind("127.0.0.1:0", Arc::clone(&service), ServerConfig::default()).unwrap();
    let client = GphClient::connect(server.local_addr()).unwrap();

    // Wrong word count.
    match client.search(&[1, 2, 3], TAU) {
        Err(NetError::Remote(WireError::Unsupported(_))) => {}
        other => panic!("wrong-width query gave {other:?}"),
    }
    // tau over the index ceiling.
    let too_big = service.index().tau_max() as u32 + 1;
    match client.search(ds.row(0), too_big) {
        Err(NetError::Remote(WireError::Unsupported(_))) => {}
        other => panic!("oversized tau gave {other:?}"),
    }
    // The connection is still usable afterwards: these were typed
    // errors, not framing failures.
    let ok = client.search(ds.row(0), TAU).unwrap();
    assert!(!ok.ids.is_empty());
    assert_eq!(server.stats().protocol_errors, 0);
}

#[test]
fn shutdown_drains_pipelined_work() {
    let (index, ds) = fixture(300, 45);
    let service = Arc::new(QueryService::new(index, ServiceConfig::default()));
    let server =
        NetServer::bind("127.0.0.1:0", Arc::clone(&service), ServerConfig::default()).unwrap();
    let client = GphClient::connect(server.local_addr()).unwrap();

    let tickets: Vec<_> =
        (0..24).map(|i| client.submit_search(ds.row(i * 7), TAU).unwrap()).collect();
    // Let the frames land in the server's per-connection queue, then
    // shut down while responses may still be in flight.
    std::thread::sleep(std::time::Duration::from_millis(200));
    let stats = server.shutdown();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let got = ticket.wait().unwrap_or_else(|e| panic!("ticket {i} lost in shutdown: {e}"));
        assert_eq!(got.ids, index_search(&service, &ds, (i * 7) % ds.len()));
    }
    assert_eq!(stats.responses, 24, "every accepted request was answered");

    // New work after shutdown fails with a transport error.
    assert!(client.search(ds.row(0), TAU).is_err());
}

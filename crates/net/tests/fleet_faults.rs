//! Fleet end-to-end under deterministic network faults: a 3-node fleet
//! plus metastore, fronted by seeded [`FaultProxy`]s, must answer every
//! search/top-k **response-identical** to a single in-process
//! [`QueryService`] over the same rows — or fail with a typed
//! [`NetError`] — and never hang, panic, or silently truncate a top-k.
//! A rolling restart (kill + warm-restart one node mid-load, metastore
//! republishing) must lose zero reads once retries are exhausted, with
//! the manifest version strictly increasing.

use gph::engine::GphConfig;
use gph::partition_opt::PartitionStrategy;
use gph_net::{
    FaultPlan, FaultProxy, FleetClient, FleetConfig, FleetManifest, FleetNode, GphClient,
    MetastoreServer, NetError, NetServer, ServerConfig, WireError, WireMutation,
};
use gph_serve::{Outcome, QueryService, ServiceConfig, ShardedIndex};
use hamming_core::{BitVector, Dataset};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

const DIM: usize = 64;
const TAU: u32 = 6;
const ROWS: usize = 240;
const FLEET_SLOTS: u32 = 6;

/// Aborts the whole process if the test runs past `limit`: under fault
/// injection the failure mode to catch is a silent hang, which a plain
/// assert can never report.
struct Watchdog {
    cancel: Option<crossbeam::channel::Sender<()>>,
    label: &'static str,
}

impl Watchdog {
    fn arm(label: &'static str, limit: Duration) -> Watchdog {
        let (tx, rx) = crossbeam::channel::bounded::<()>(1);
        std::thread::spawn(move || {
            if let Err(crossbeam::channel::RecvTimeoutError::Timeout) = rx.recv_timeout(limit) {
                eprintln!("WATCHDOG: test {label:?} exceeded {limit:?}; aborting");
                std::process::abort();
            }
        });
        Watchdog { cancel: Some(tx), label }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        let _ = self.label;
        self.cancel.take();
    }
}

fn engine_cfg() -> GphConfig {
    let mut cfg = GphConfig::new(4, 12);
    cfg.strategy = PartitionStrategy::RandomShuffle { seed: 7 };
    cfg
}

fn dataset(seed: u64) -> Dataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut ds = Dataset::new(DIM);
    for _ in 0..ROWS {
        let v = BitVector::from_bits((0..DIM).map(|_| rng.random_bool(0.4)));
        ds.push(&v).unwrap();
    }
    ds
}

fn reference(ds: &Dataset) -> Arc<QueryService> {
    let index = ShardedIndex::build(ds, 3, &engine_cfg()).unwrap();
    Arc::new(QueryService::new(Arc::new(index), ServiceConfig::default()))
}

/// A fleet node's service: an index holding exactly the rows whose
/// fleet slot (`shard_of(id, FLEET_SLOTS)`) is in `slots`, under their
/// **global** ids. The node re-shards internally however it likes — the
/// fleet partition and the node's internal partition are independent.
fn node_service(ds: &Dataset, slots: &[u32]) -> Arc<QueryService> {
    let index = ShardedIndex::build(&Dataset::new(DIM), 2, &engine_cfg()).unwrap();
    for id in 0..ds.len() as u32 {
        let slot = ShardedIndex::shard_of(id, FLEET_SLOTS as usize) as u32;
        if slots.contains(&slot) {
            index.insert(id, ds.row(id as usize)).unwrap();
        }
    }
    Arc::new(QueryService::new(Arc::new(index), ServiceConfig::default()))
}

const GROUP_SLOTS: [[u32; 2]; 3] = [[0, 3], [1, 4], [2, 5]];

fn manifest(version: u64, group_addrs: [Vec<SocketAddr>; 3]) -> FleetManifest {
    FleetManifest {
        version,
        n_shards: FLEET_SLOTS,
        nodes: GROUP_SLOTS
            .iter()
            .zip(group_addrs)
            .map(|(slots, addrs)| FleetNode {
                slots: slots.to_vec(),
                addrs: addrs.iter().map(|a| a.to_string()).collect(),
            })
            .collect(),
    }
}

fn expect_ids(service: &QueryService, query: &[u64], tau: u32) -> Vec<u32> {
    match service.query(query, tau).outcome {
        Outcome::Ids { ids, .. } => ids.as_ref().clone(),
        other => panic!("reference refused the query: {other:?}"),
    }
}

fn expect_topk(service: &QueryService, query: &[u64], k: usize) -> Vec<(u32, u32)> {
    match service.query_topk(query, k).outcome {
        Outcome::TopK { hits, degraded_cap } => {
            assert_eq!(degraded_cap, None, "fixture must not degrade");
            hits.as_ref().clone()
        }
        other => panic!("reference refused the top-k: {other:?}"),
    }
}

/// The acceptance test: the same fleet, driven through three distinct
/// seeded fault schedules, answers byte-identical to the in-process
/// service every time. Each node group lists the chaos proxy as its
/// primary address and the direct listener as the replica, so the retry
/// ladder always has a clean path once the proxy has misbehaved.
#[test]
fn three_fault_seeds_cannot_corrupt_fleet_answers() {
    let _watchdog = Watchdog::arm("three_fault_seeds", Duration::from_secs(240));
    let ds = dataset(42);
    let single = reference(&ds);
    let nodes: Vec<_> = GROUP_SLOTS
        .iter()
        .map(|slots| {
            NetServer::bind("127.0.0.1:0", node_service(&ds, slots), ServerConfig::default())
                .unwrap()
        })
        .collect();
    let metastore = MetastoreServer::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let deployer = GphClient::connect(metastore.local_addr()).unwrap();

    for (round, seed) in [0xA11CEu64, 0xB0B5ED, 0xC0FFEE].into_iter().enumerate() {
        let proxies: Vec<FaultProxy> = nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                FaultProxy::launch(n.local_addr(), FaultPlan::chaos(seed.wrapping_add(i as u64)))
                    .unwrap()
            })
            .collect();
        let addrs = |i: usize| vec![proxies[i].local_addr(), nodes[i].local_addr()];
        let m = manifest(round as u64 + 1, [addrs(0), addrs(1), addrs(2)]);
        assert_eq!(deployer.publish_manifest(&m).unwrap(), round as u64 + 1);

        let fleet = FleetClient::connect(
            &metastore.local_addr().to_string(),
            FleetConfig {
                attempts: 3,
                backoff: Duration::from_millis(10),
                request_timeout: Duration::from_secs(2),
                ..FleetConfig::default()
            },
        )
        .unwrap();
        assert_eq!(fleet.manifest().version, round as u64 + 1);

        for qi in (0..ROWS).step_by(7) {
            let q = ds.row(qi);
            let got = fleet.search(q, TAU).unwrap_or_else(|e| {
                panic!("seed {seed:#x} query {qi}: reads must survive the schedule: {e}")
            });
            assert_eq!(got.ids, expect_ids(&single, q, TAU), "seed {seed:#x} query {qi}");
            assert!(!got.degraded);
        }
        for qi in (0..ROWS).step_by(23) {
            let q = ds.row(qi);
            let got = fleet.topk(q, 5).unwrap();
            assert_eq!(got.hits, expect_topk(&single, q, 5), "seed {seed:#x} top-k {qi}");
        }

        // The schedule must have had teeth, or this round proved nothing.
        let injected: u64 = proxies
            .iter()
            .map(|p| {
                let s = p.stats();
                s.partial_writes + s.stalls + s.torn_frames + s.resets + s.delayed_accepts
            })
            .sum();
        assert!(injected > 0, "seed {seed:#x} injected no faults");
        for p in proxies {
            p.stop();
        }
    }

    for n in nodes {
        n.shutdown();
    }
    metastore.shutdown();
}

/// Mutations route to the owner group's primary: after a fleet insert,
/// exactly the owning node's index holds the id, and it is visible to a
/// fleet-wide exact search.
#[test]
fn fleet_mutations_land_on_the_owning_node_only() {
    let _watchdog = Watchdog::arm("fleet_mutations", Duration::from_secs(120));
    let ds = dataset(43);
    let services: Vec<_> = GROUP_SLOTS.iter().map(|s| node_service(&ds, s)).collect();
    let nodes: Vec<_> = services
        .iter()
        .map(|s| NetServer::bind("127.0.0.1:0", Arc::clone(s), ServerConfig::default()).unwrap())
        .collect();
    let metastore = MetastoreServer::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let m = manifest(
        1,
        [vec![nodes[0].local_addr()], vec![nodes[1].local_addr()], vec![nodes[2].local_addr()]],
    );
    GphClient::connect(metastore.local_addr()).unwrap().publish_manifest(&m).unwrap();
    let fleet =
        FleetClient::connect(&metastore.local_addr().to_string(), FleetConfig::default()).unwrap();

    for j in 0..24u32 {
        let id = 50_000 + j * 101;
        let row = vec![0x8000_0000_0000_0000u64 | id as u64];
        assert_eq!(fleet.insert(id, &row).unwrap(), WireMutation::Applied { replaced: false });

        let holders: Vec<usize> = (0..3).filter(|&i| services[i].index().contains(id)).collect();
        assert_eq!(holders, vec![fleet.node_for(id).unwrap()], "id {id} owner");
        assert_eq!(fleet.search(&row, 0).unwrap().ids, vec![id], "id {id} visible fleet-wide");

        assert_eq!(fleet.delete(id).unwrap(), WireMutation::Applied { replaced: true });
        assert_eq!(fleet.delete(id).unwrap(), WireMutation::NotFound);
    }

    for n in nodes {
        n.shutdown();
    }
    metastore.shutdown();
}

/// Distributed tracing under faults: a traced fleet search through
/// seeded chaos proxies — with group 2 behind a proxy that stalls every
/// chunk, the deterministic straggler — still answers byte-identical to
/// the in-process reference, and the merged [`gph_obs::FleetTrace`]
/// holds the per-hop invariant
/// `sum(phases) ≤ node total ≤ hop e2e ≤ fleet total` on every hop.
#[test]
fn traced_fleet_search_holds_hop_invariants_under_faults() {
    let _watchdog = Watchdog::arm("traced_fleet", Duration::from_secs(240));
    let ds = dataset(45);
    let single = reference(&ds);
    let nodes: Vec<_> = GROUP_SLOTS
        .iter()
        .map(|slots| {
            NetServer::bind("127.0.0.1:0", node_service(&ds, slots), ServerConfig::default())
                .unwrap()
        })
        .collect();
    let stalled = FaultPlan {
        stall_prob: 1.0,
        stall: Duration::from_millis(100),
        ..FaultPlan::clean(0xD00F)
    };
    let proxies = [
        FaultProxy::launch(nodes[0].local_addr(), FaultPlan::chaos(0xFEED_0001)).unwrap(),
        FaultProxy::launch(nodes[1].local_addr(), FaultPlan::chaos(0xFEED_0002)).unwrap(),
        FaultProxy::launch(nodes[2].local_addr(), stalled).unwrap(),
    ];
    let metastore = MetastoreServer::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addrs = |i: usize| vec![proxies[i].local_addr(), nodes[i].local_addr()];
    let m = manifest(1, [addrs(0), addrs(1), addrs(2)]);
    GphClient::connect(metastore.local_addr()).unwrap().publish_manifest(&m).unwrap();
    let fleet = FleetClient::connect(
        &metastore.local_addr().to_string(),
        FleetConfig {
            attempts: 3,
            backoff: Duration::from_millis(10),
            request_timeout: Duration::from_secs(2),
            ..FleetConfig::default()
        },
    )
    .unwrap();

    let straggler_name = nodes[2].local_addr().to_string();
    let mut straggled = 0usize;
    let mut queries = 0usize;
    let mut prev_trace_id = 0u64;
    for qi in (0..ROWS).step_by(11) {
        let q = ds.row(qi);
        let got = fleet
            .search_traced(q, TAU)
            .unwrap_or_else(|e| panic!("traced query {qi}: reads must survive the schedule: {e}"));
        assert_eq!(got.ids, expect_ids(&single, q, TAU), "traced query {qi}");
        let t = &got.trace;
        assert_eq!(t.tau, TAU);
        assert!(t.trace_id > prev_trace_id, "trace ids must strictly increase");
        prev_trace_id = t.trace_id;
        assert_eq!(t.hops.len(), 3, "one hop per node group");
        assert!(t.hops.windows(2).all(|w| w[0].node <= w[1].node), "hops canonically ordered");
        for h in &t.hops {
            assert!(!h.node.is_empty(), "every hop carries a node identity");
            assert_eq!(h.trace.trace_id, t.trace_id, "hop {} lost the distributed id", h.node);
            assert!(h.trace.started_unix_ns > 0, "hop {} lost its arrival stamp", h.node);
            let phases = h.trace.phase_totals().total();
            assert!(
                phases <= h.trace.total_ns,
                "hop {}: phase sum {phases} exceeds node total {}",
                h.node,
                h.trace.total_ns
            );
            assert!(
                h.trace.total_ns <= h.e2e_ns,
                "hop {}: node total {} exceeds hop e2e {}",
                h.node,
                h.trace.total_ns,
                h.e2e_ns
            );
            assert!(
                h.e2e_ns <= t.total_ns,
                "hop {}: e2e {} exceeds fleet total {}",
                h.node,
                h.e2e_ns,
                t.total_ns
            );
            assert_eq!(h.network_ns(), h.e2e_ns - h.trace.total_ns);
        }
        queries += 1;
        if t.straggler().unwrap().node == straggler_name {
            straggled += 1;
        }
    }
    // The stalled node pays ≥200ms per round trip; chaos noise on the
    // other groups must not out-straggle it more than occasionally.
    assert!(straggled * 2 > queries, "stalled node was straggler only {straggled}/{queries} times");
    assert!(proxies[2].stats().stalls > 0, "the straggler schedule had no teeth");

    for p in proxies {
        p.stop();
    }
    for n in nodes {
        n.shutdown();
    }
    metastore.shutdown();
}

/// Metrics federation: `AggregateMetrics` against the metastore merges
/// every live node's exposition; killing a node mid-fleet turns it into
/// a **stale** entry (scrape error attached, no text) without failing
/// the aggregation or dropping the other nodes' series.
#[test]
fn metrics_federation_reports_killed_node_stale() {
    let _watchdog = Watchdog::arm("metrics_federation", Duration::from_secs(120));
    let ds = dataset(46);
    let mut nodes: Vec<_> = GROUP_SLOTS
        .iter()
        .map(|slots| {
            NetServer::bind("127.0.0.1:0", node_service(&ds, slots), ServerConfig::default())
                .unwrap()
        })
        .collect();
    let metastore = MetastoreServer::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let m = manifest(
        1,
        [vec![nodes[0].local_addr()], vec![nodes[1].local_addr()], vec![nodes[2].local_addr()]],
    );
    let admin = GphClient::connect(metastore.local_addr()).unwrap();
    admin.publish_manifest(&m).unwrap();

    // Put some traffic through so the expositions are non-trivial.
    let fleet =
        FleetClient::connect(&metastore.local_addr().to_string(), FleetConfig::default()).unwrap();
    for qi in (0..ROWS).step_by(31) {
        fleet.search(ds.row(qi), TAU).unwrap();
    }

    let all = admin.aggregate_metrics().unwrap();
    assert_eq!(all.nodes.len(), 3, "one scrape per node group");
    assert!(all.nodes.iter().all(|n| n.error.is_none()), "all nodes fresh: {:?}", all.nodes);
    assert!(all.nodes.iter().all(|n| n.text.contains("gph_net_requests_total")));
    assert!(all.merged.contains("gph_net_requests_total"), "merged carries node series");
    assert!(all.merged.contains("gph_fed_scrapes_total"), "merged carries metastore series");

    // Kill group 1 and aggregate again: stale, not an error.
    let killed = nodes.remove(1);
    let killed_addr = killed.local_addr().to_string();
    killed.shutdown();
    let after = admin.aggregate_metrics().unwrap();
    assert_eq!(after.nodes.len(), 3, "stale nodes still appear in the scrape report");
    let stale: Vec<_> = after.nodes.iter().filter(|n| n.error.is_some()).collect();
    assert_eq!(stale.len(), 1, "exactly the killed node is stale: {:?}", after.nodes);
    assert_eq!(stale[0].node, killed_addr);
    assert!(stale[0].text.is_empty(), "a stale scrape carries no exposition");
    assert!(after.merged.contains("gph_net_requests_total"), "live series survive");
    assert!(
        after.merged.contains("gph_fed_scrape_errors_total"),
        "the failed scrape is itself a series"
    );

    for n in nodes {
        n.shutdown();
    }
    metastore.shutdown();
}

/// Health-driven routing: a health sweep reports every address's shard
/// ownership and load, and an unreachable primary is demoted so the
/// retry ladder prefers the healthy replica — reads keep answering.
#[test]
fn health_probes_demote_unreachable_primaries() {
    let _watchdog = Watchdog::arm("health_demotion", Duration::from_secs(120));
    let ds = dataset(47);
    let single = reference(&ds);
    let services: Vec<_> = GROUP_SLOTS.iter().map(|s| node_service(&ds, s)).collect();
    let bind = |i: usize| {
        NetServer::bind_with_slots(
            "127.0.0.1:0",
            Arc::clone(&services[i]),
            ServerConfig::default(),
            GROUP_SLOTS[i].to_vec(),
        )
        .unwrap()
    };
    let mut primary0 = Some(bind(0));
    let replica0 = bind(0); // same service, same rows
    let node1 = bind(1);
    let node2 = bind(2);
    let metastore = MetastoreServer::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let primary0_addr = primary0.as_ref().unwrap().local_addr().to_string();
    let m = manifest(
        1,
        [
            vec![primary0.as_ref().unwrap().local_addr(), replica0.local_addr()],
            vec![node1.local_addr()],
            vec![node2.local_addr()],
        ],
    );
    GphClient::connect(metastore.local_addr()).unwrap().publish_manifest(&m).unwrap();
    let fleet = FleetClient::connect(
        &metastore.local_addr().to_string(),
        FleetConfig {
            attempts: 2,
            backoff: Duration::from_millis(10),
            request_timeout: Duration::from_secs(2),
            ..FleetConfig::default()
        },
    )
    .unwrap();

    // Sweep 1: everyone answers; ownership and load are reported.
    let sweep = fleet.refresh_health();
    assert_eq!(sweep.len(), 4, "two addresses in group 0, one in each other group");
    let expect_group = [0usize, 0, 1, 2];
    for (entry, gi) in sweep.iter().zip(expect_group) {
        let h = entry.health.as_ref().unwrap_or_else(|| panic!("{} unreachable", entry.addr));
        assert_eq!(h.slots, GROUP_SLOTS[gi].to_vec(), "{} reports its slots", entry.addr);
        assert_eq!(h.rows, services[gi].index().len() as u64);
        assert!(!h.degraded, "{} idle, not degraded", entry.addr);
        assert!(h.queue_capacity > 0);
        assert!(!entry.demoted);
    }
    assert!(fleet.demoted().is_empty());

    // Kill group 0's primary; the next sweep demotes exactly it.
    primary0.take().unwrap().shutdown();
    let sweep = fleet.refresh_health();
    let down: Vec<_> = sweep.iter().filter(|e| e.demoted).collect();
    assert_eq!(down.len(), 1, "exactly the dead primary is demoted: {sweep:?}");
    assert_eq!(down[0].addr, primary0_addr);
    assert!(down[0].health.is_none());
    assert_eq!(fleet.demoted(), std::collections::HashSet::from([primary0_addr.clone()]));

    // Reads route around the demoted primary onto the replica.
    for qi in (0..ROWS).step_by(17) {
        let q = ds.row(qi);
        assert_eq!(fleet.search(q, TAU).unwrap().ids, expect_ids(&single, q, TAU), "query {qi}");
    }

    replica0.shutdown();
    node1.shutdown();
    node2.shutdown();
    metastore.shutdown();
}

/// Rolling restart: kill group 0's primary mid-load, republish pointing
/// at the replica, warm-restart a new primary, republish again. The
/// load thread must see **zero** failed reads (retries exhaust onto the
/// replica), and the manifest version must only ever go up — a stale
/// republish is refused with a typed error.
#[test]
fn rolling_restart_loses_no_reads_and_versions_only_increase() {
    let _watchdog = Watchdog::arm("rolling_restart", Duration::from_secs(240));
    let ds = dataset(44);
    let single = reference(&ds);
    let services: Vec<_> = GROUP_SLOTS.iter().map(|s| node_service(&ds, s)).collect();
    let bind = |svc: &Arc<QueryService>| {
        NetServer::bind("127.0.0.1:0", Arc::clone(svc), ServerConfig::default()).unwrap()
    };
    let mut primary0 = Some(bind(&services[0]));
    let replica0 = bind(&services[0]); // true replica: same service, same rows
    let node1 = bind(&services[1]);
    let node2 = bind(&services[2]);
    let metastore = MetastoreServer::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let deployer = GphClient::connect(metastore.local_addr()).unwrap();

    let m1 = manifest(
        1,
        [
            vec![primary0.as_ref().unwrap().local_addr(), replica0.local_addr()],
            vec![node1.local_addr()],
            vec![node2.local_addr()],
        ],
    );
    assert_eq!(deployer.publish_manifest(&m1).unwrap(), 1);

    let fleet = Arc::new(
        FleetClient::connect(
            &metastore.local_addr().to_string(),
            FleetConfig {
                attempts: 4,
                backoff: Duration::from_millis(10),
                request_timeout: Duration::from_secs(2),
                ..FleetConfig::default()
            },
        )
        .unwrap(),
    );

    // Precompute expected answers so the load thread only compares.
    let queries: Vec<(Vec<u64>, Vec<u32>)> = (0..ROWS)
        .step_by(6)
        .map(|qi| (ds.row(qi).to_vec(), expect_ids(&single, ds.row(qi), TAU)))
        .collect();

    let load = {
        let fleet = Arc::clone(&fleet);
        let queries = queries.clone();
        std::thread::spawn(move || {
            let mut served = 0u64;
            for round in 0..4 {
                for (i, (q, want)) in queries.iter().enumerate() {
                    let got = fleet
                        .search(q, TAU)
                        .unwrap_or_else(|e| panic!("read {round}/{i} failed after retries: {e}"));
                    assert_eq!(&got.ids, want, "read {round}/{i} answered wrong");
                    served += 1;
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
            served
        })
    };

    // The restart choreography, mid-load.
    std::thread::sleep(Duration::from_millis(60));
    primary0.take().unwrap().shutdown(); // kill
    std::thread::sleep(Duration::from_millis(60));
    let m2 = manifest(
        2,
        [vec![replica0.local_addr()], vec![node1.local_addr()], vec![node2.local_addr()]],
    );
    assert_eq!(deployer.publish_manifest(&m2).unwrap(), 2);
    std::thread::sleep(Duration::from_millis(60));
    let restarted = bind(&services[0]); // warm restart: same rows, new port
    let m3 = manifest(
        3,
        [
            vec![restarted.local_addr(), replica0.local_addr()],
            vec![node1.local_addr()],
            vec![node2.local_addr()],
        ],
    );
    assert_eq!(deployer.publish_manifest(&m3).unwrap(), 3);

    let served = load.join().expect("load thread must not panic");
    assert_eq!(served, 4 * queries.len() as u64, "every read served exactly once");

    // Versions only increase: replaying an old manifest is refused.
    match deployer.publish_manifest(&m2) {
        Err(NetError::Remote(WireError::ManifestStale { current })) => assert_eq!(current, 3),
        other => panic!("stale republish gave {other:?}"),
    }
    assert_eq!(fleet.refresh_manifest().unwrap(), 3);
    assert_eq!(fleet.manifest().version, 3);

    // The restarted primary serves: route a read through the new map.
    let (q, want) = &queries[0];
    assert_eq!(&fleet.search(q, TAU).unwrap().ids, want);

    restarted.shutdown();
    replica0.shutdown();
    node1.shutdown();
    node2.shutdown();
    metastore.shutdown();
}

//! Event-loop mechanics under adversarial clients: slow readers hit the
//! write-buffer cap (backpressure, not unbounded memory), idle
//! connections get evicted, a thousand concurrent idle connections fit
//! on a handful of threads (no thread-per-connection), the connection
//! cap refuses with a typed frame, and garbage bytes produce a typed
//! error — never a panic or a hang.

use gph_net::protocol::{encode_request, encode_response, read_frame, Message};
use gph_net::{
    FleetManifest, FleetNode, GphClient, MetastoreServer, Request, Response, ServerConfig,
    WireError,
};
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A manifest whose encoding is large (~64 KiB): one node owning one
/// slot, with `fat` kilobyte-sized addresses. Lets tests generate big
/// responses from a metastore with no index behind it.
fn fat_manifest(version: u64, addrs: usize) -> FleetManifest {
    FleetManifest {
        version,
        n_shards: 1,
        nodes: vec![FleetNode {
            slots: vec![0],
            addrs: (0..addrs).map(|i| format!("{i:01024}")).collect(),
        }],
    }
}

fn await_active(stats: impl Fn() -> u64, want: u64, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while stats() != want {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn slow_reader_backpressure_respects_the_write_buffer_cap() {
    const CAP: usize = 64 * 1024;
    const REQUESTS: u64 = 300;
    let cfg = ServerConfig { max_write_buffer: CAP, ..ServerConfig::default() };
    let server = MetastoreServer::bind("127.0.0.1:0", cfg).unwrap();

    let manifest = fat_manifest(1, 64);
    let frame_len =
        encode_response(1, &Response::Manifest { manifest: Some(manifest.clone()) }).len();
    assert!(frame_len > CAP / 2, "fixture response must be cap-sized, got {frame_len}");
    GphClient::connect(server.local_addr()).unwrap().publish_manifest(&manifest).unwrap();

    // A raw client that floods requests and reads nothing.
    let mut sock = TcpStream::connect(server.local_addr()).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    for id in 1..=REQUESTS {
        sock.write_all(&encode_request(id, &Request::GetManifest)).unwrap();
    }
    // Let the server read, resolve, and jam against the cap while the
    // socket stays unread.
    std::thread::sleep(Duration::from_millis(400));
    let jammed = server.stats();
    assert!(
        jammed.backpressure_pauses > 0,
        "a never-reading client must trip backpressure: {jammed:?}"
    );
    assert!(
        (jammed.write_buffer_peak as usize) < CAP + frame_len,
        "write buffer may overshoot the cap by at most one frame: peak {} vs cap {CAP} + frame {frame_len}",
        jammed.write_buffer_peak
    );

    // Now drain: every response arrives complete and in request order.
    for id in 1..=REQUESTS {
        let (got_id, msg, _) =
            read_frame(&mut sock).expect("clean frame").expect("server still serving");
        assert_eq!(got_id, id);
        match msg {
            Message::Response(Response::Manifest { manifest: Some(m) }) => {
                assert_eq!(m, manifest, "response {id} truncated or corrupted")
            }
            other => panic!("response {id} was {other:?}"),
        }
    }
    let stats = server.shutdown();
    assert_eq!(stats.responses, REQUESTS + 1, "all requests answered (plus the publish)");
    assert!((stats.write_buffer_peak as usize) < CAP + frame_len);
}

#[test]
fn idle_connections_are_evicted_on_schedule() {
    let cfg =
        ServerConfig { idle_timeout: Some(Duration::from_millis(80)), ..ServerConfig::default() };
    let server = MetastoreServer::bind("127.0.0.1:0", cfg).unwrap();
    let mut sock = TcpStream::connect(server.local_addr()).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    // Activity resets the clock: a served request keeps the connection.
    sock.write_all(&encode_request(1, &Request::Ping)).unwrap();
    let (id, msg, _) = read_frame(&mut sock).unwrap().expect("pong");
    assert_eq!((id, matches!(msg, Message::Response(Response::Pong))), (1, true));

    // Then silence: the server must close from its side.
    let t0 = Instant::now();
    assert!(
        read_frame(&mut sock).expect("clean EOF, not an error").is_none(),
        "idle connection must be evicted"
    );
    assert!(t0.elapsed() >= Duration::from_millis(40), "eviction honors the idle window");
    let stats = server.shutdown();
    assert_eq!(stats.idle_evictions, 1);
}

#[test]
fn a_thousand_idle_connections_share_a_handful_of_threads() {
    polling::raise_nofile_limit(8192);
    const CONNS: usize = 1000;
    let cfg = ServerConfig { max_connections: CONNS + 8, workers: 2, ..ServerConfig::default() };
    let server = MetastoreServer::bind("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();

    let mut socks: Vec<TcpStream> = Vec::with_capacity(CONNS);
    for i in 0..CONNS {
        socks.push(TcpStream::connect(addr).unwrap_or_else(|e| panic!("conn {i}: {e}")));
        if i % 128 == 127 {
            // Let the acceptor keep ahead of the listener backlog.
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    await_active(|| server.stats().connections_active, CONNS as u64, "1000 registrations");

    // The whole point of the event loop: connection count must not show
    // up in the thread count. /proc/self/task counts every thread in
    // the test process (harness, sibling tests, clients included), so
    // the bound is generous — but three orders of magnitude below
    // thread-per-connection.
    let threads = std::fs::read_dir("/proc/self/task").unwrap().count();
    assert!(
        threads < 100,
        "{CONNS} idle connections must not cost per-connection threads (saw {threads})"
    );

    // The multiplexer still serves requests on arbitrary connections.
    for i in [0usize, CONNS / 2, CONNS - 1] {
        let sock = &mut socks[i];
        sock.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        sock.write_all(&encode_request(7, &Request::Ping)).unwrap();
        let (id, msg, _) = read_frame(sock).unwrap().expect("pong");
        assert_eq!(id, 7, "conn {i}");
        assert!(matches!(msg, Message::Response(Response::Pong)), "conn {i}");
    }

    drop(socks);
    await_active(|| server.stats().connections_active, 0, "teardown of 1000 connections");
    let stats = server.shutdown();
    assert_eq!(stats.connections_opened, CONNS as u64);
    assert_eq!(stats.connections_refused, 0);
}

#[test]
fn the_connection_cap_refuses_with_a_typed_frame() {
    let cfg = ServerConfig { max_connections: 2, ..ServerConfig::default() };
    let server = MetastoreServer::bind("127.0.0.1:0", cfg).unwrap();
    let addr = server.local_addr();

    let keep: Vec<TcpStream> = (0..2).map(|_| TcpStream::connect(addr).unwrap()).collect();
    await_active(|| server.stats().connections_active, 2, "2 registrations");

    // Over the cap: a typed Overloaded frame on the reserved id, then EOF.
    let mut refused = TcpStream::connect(addr).unwrap();
    refused.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let (id, msg, _) = read_frame(&mut refused).unwrap().expect("refusal frame");
    assert_eq!(id, 0, "connection-level refusal uses the reserved id");
    assert!(
        matches!(msg, Message::Response(Response::Error(WireError::Overloaded))),
        "got {msg:?}"
    );
    assert!(read_frame(&mut refused).unwrap().is_none(), "refused connection is closed");
    assert!(server.stats().connections_refused >= 1);

    // Freeing a slot readmits new connections.
    drop(keep);
    await_active(|| server.stats().connections_active, 0, "slots freed");
    let mut sock = TcpStream::connect(addr).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    sock.write_all(&encode_request(1, &Request::Ping)).unwrap();
    assert!(read_frame(&mut sock).unwrap().is_some(), "readmitted connection is served");
    server.shutdown();
}

/// The event-loop counters are real metrics, not a side channel: every
/// series shows up in the server's own `Metrics` exposition under the
/// `gph_net_` prefix, with values agreeing with the stats snapshot.
#[test]
fn event_loop_counters_appear_in_the_metrics_exposition() {
    let server = MetastoreServer::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let client = GphClient::connect(server.local_addr()).unwrap();
    client.ping().unwrap();

    // Trip one protocol error on a second connection.
    let mut bad = TcpStream::connect(server.local_addr()).unwrap();
    bad.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    bad.write_all(b"GPHX not a frame").unwrap();
    let (id, msg, _) = read_frame(&mut bad).unwrap().expect("error frame");
    assert_eq!(id, 0);
    assert!(matches!(msg, Message::Response(Response::Error(WireError::Malformed(_)))));

    let text = client.metrics().unwrap();
    let exp = gph_obs::Exposition::parse(&text);
    for series in [
        "gph_net_connections_opened_total",
        "gph_net_connections_active",
        "gph_net_connections_refused_total",
        "gph_net_requests_total",
        "gph_net_responses_total",
        "gph_net_errors_sent_total",
        "gph_net_protocol_errors_total",
        "gph_net_bytes_in_total",
        "gph_net_bytes_out_total",
        "gph_net_idle_evictions_total",
        "gph_net_backpressure_pauses_total",
        "gph_net_write_buffer_peak",
    ] {
        assert!(exp.value(series).is_some(), "series {series} missing from:\n{text}");
    }
    assert!(exp.value("gph_net_connections_opened_total").unwrap() >= 2.0);
    assert_eq!(exp.value("gph_net_protocol_errors_total"), Some(1.0));
    assert_eq!(exp.value("gph_net_errors_sent_total"), Some(1.0));
    // The ping plus the metrics request itself (reads are counted on
    // arrival, before the response renders).
    assert!(exp.value("gph_net_requests_total").unwrap() >= 2.0);
    assert!(exp.value("gph_net_bytes_in_total").unwrap() > 0.0);

    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 1, "snapshot and exposition agree");
}

#[test]
fn garbage_bytes_get_a_typed_error_and_a_close() {
    let server = MetastoreServer::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut sock = TcpStream::connect(server.local_addr()).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    sock.write_all(b"this is not a GPHN frame at all").unwrap();

    let (id, msg, _) = read_frame(&mut sock).unwrap().expect("error frame before close");
    assert_eq!(id, 0);
    assert!(
        matches!(msg, Message::Response(Response::Error(WireError::Malformed(_)))),
        "got {msg:?}"
    );
    assert!(read_frame(&mut sock).unwrap().is_none(), "desynced connection is closed");
    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 1);
}

//! A 3-layer perceptron regressor (the "DNN" model of Table III).
//!
//! Architecture: input → hidden₁ (ReLU) → hidden₂ (ReLU) → linear output,
//! trained with mini-batch Adam on mean squared error. Sized for the
//! paper's workload (≈1000 training points, ≤ ~100 binary features), not
//! for generality.

use crate::matrix::Matrix;
use crate::Regressor;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Training hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct MlpParams {
    /// Width of the first hidden layer.
    pub hidden1: usize,
    /// Width of the second hidden layer.
    pub hidden2: usize,
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// RNG seed for init and shuffling.
    pub seed: u64,
}

impl Default for MlpParams {
    fn default() -> Self {
        MlpParams { hidden1: 32, hidden2: 16, epochs: 200, batch: 32, lr: 1e-2, seed: 7 }
    }
}

/// One dense layer with Adam state.
#[derive(Clone, Debug)]
struct Layer {
    w: Vec<f64>, // out x in, row-major
    b: Vec<f64>,
    n_in: usize,
    n_out: usize,
    // Adam moments
    mw: Vec<f64>,
    vw: Vec<f64>,
    mb: Vec<f64>,
    vb: Vec<f64>,
}

impl Layer {
    fn new(n_in: usize, n_out: usize, rng: &mut impl Rng) -> Self {
        // He initialization for ReLU layers.
        let scale = (2.0 / n_in.max(1) as f64).sqrt();
        let w = (0..n_in * n_out).map(|_| (rng.random::<f64>() * 2.0 - 1.0) * scale).collect();
        Layer {
            w,
            b: vec![0.0; n_out],
            n_in,
            n_out,
            mw: vec![0.0; n_in * n_out],
            vw: vec![0.0; n_in * n_out],
            mb: vec![0.0; n_out],
            vb: vec![0.0; n_out],
        }
    }

    fn forward(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for o in 0..self.n_out {
            let row = &self.w[o * self.n_in..(o + 1) * self.n_in];
            let z: f64 = row.iter().zip(x).map(|(&w, &v)| w * v).sum::<f64>() + self.b[o];
            out.push(z);
        }
    }

    /// Accumulates gradients for one sample; returns grad wrt input.
    #[allow(clippy::too_many_arguments)]
    fn backward(&self, x: &[f64], dz: &[f64], gw: &mut [f64], gb: &mut [f64]) -> Vec<f64> {
        let mut dx = vec![0.0; self.n_in];
        for o in 0..self.n_out {
            let g = dz[o];
            gb[o] += g;
            let row = &self.w[o * self.n_in..(o + 1) * self.n_in];
            let grow = &mut gw[o * self.n_in..(o + 1) * self.n_in];
            for i in 0..self.n_in {
                grow[i] += g * x[i];
                dx[i] += g * row[i];
            }
        }
        dx
    }

    fn adam_step(&mut self, gw: &[f64], gb: &[f64], lr: f64, t: usize) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        let c1 = 1.0 - B1.powi(t as i32);
        let c2 = 1.0 - B2.powi(t as i32);
        for (((w, m), v), &g) in self.w.iter_mut().zip(&mut self.mw).zip(&mut self.vw).zip(gw) {
            *m = B1 * *m + (1.0 - B1) * g;
            *v = B2 * *v + (1.0 - B2) * g * g;
            *w -= lr * (*m / c1) / ((*v / c2).sqrt() + EPS);
        }
        for (((b, m), v), &g) in self.b.iter_mut().zip(&mut self.mb).zip(&mut self.vb).zip(gb) {
            *m = B1 * *m + (1.0 - B1) * g;
            *v = B2 * *v + (1.0 - B2) * g * g;
            *b -= lr * (*m / c1) / ((*v / c2).sqrt() + EPS);
        }
    }
}

/// A fitted 3-layer MLP regressor.
#[derive(Clone, Debug)]
pub struct Mlp {
    l1: Layer,
    l2: Layer,
    l3: Layer,
}

#[inline]
fn relu_inplace(v: &mut [f64]) {
    for x in v {
        if *x < 0.0 {
            *x = 0.0;
        }
    }
}

impl Mlp {
    /// Trains on rows of `x` against `y`.
    pub fn fit(x: &Matrix, y: &[f64], params: MlpParams) -> Self {
        assert_eq!(x.rows(), y.len());
        let d = x.cols();
        let mut rng = ChaCha8Rng::seed_from_u64(params.seed);
        let mut l1 = Layer::new(d, params.hidden1, &mut rng);
        let mut l2 = Layer::new(params.hidden1, params.hidden2, &mut rng);
        let mut l3 = Layer::new(params.hidden2, 1, &mut rng);

        let n = x.rows();
        let mut order: Vec<usize> = (0..n).collect();
        let (mut a1, mut a2, mut a3) = (Vec::new(), Vec::new(), Vec::new());
        let mut t = 0usize;
        let (mut gw1, mut gb1) = (vec![0.0; l1.w.len()], vec![0.0; l1.b.len()]);
        let (mut gw2, mut gb2) = (vec![0.0; l2.w.len()], vec![0.0; l2.b.len()]);
        let (mut gw3, mut gb3) = (vec![0.0; l3.w.len()], vec![0.0; l3.b.len()]);
        for _ in 0..params.epochs {
            // Fisher–Yates shuffle for stochasticity.
            for i in (1..n).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            for chunk in order.chunks(params.batch.max(1)) {
                gw1.iter_mut().for_each(|g| *g = 0.0);
                gb1.iter_mut().for_each(|g| *g = 0.0);
                gw2.iter_mut().for_each(|g| *g = 0.0);
                gb2.iter_mut().for_each(|g| *g = 0.0);
                gw3.iter_mut().for_each(|g| *g = 0.0);
                gb3.iter_mut().for_each(|g| *g = 0.0);
                for &i in chunk {
                    let xi = x.row(i);
                    l1.forward(xi, &mut a1);
                    relu_inplace(&mut a1);
                    l2.forward(&a1, &mut a2);
                    relu_inplace(&mut a2);
                    l3.forward(&a2, &mut a3);
                    let err = a3[0] - y[i]; // d(MSE/2)/dz
                    let dz3 = [err];
                    let mut dz2 = l3.backward(&a2, &dz3, &mut gw3, &mut gb3);
                    for (g, &a) in dz2.iter_mut().zip(&a2) {
                        if a <= 0.0 {
                            *g = 0.0;
                        }
                    }
                    let mut dz1 = l2.backward(&a1, &dz2, &mut gw2, &mut gb2);
                    for (g, &a) in dz1.iter_mut().zip(&a1) {
                        if a <= 0.0 {
                            *g = 0.0;
                        }
                    }
                    let _ = l1.backward(xi, &dz1, &mut gw1, &mut gb1);
                }
                let inv = 1.0 / chunk.len() as f64;
                gw1.iter_mut().for_each(|g| *g *= inv);
                gb1.iter_mut().for_each(|g| *g *= inv);
                gw2.iter_mut().for_each(|g| *g *= inv);
                gb2.iter_mut().for_each(|g| *g *= inv);
                gw3.iter_mut().for_each(|g| *g *= inv);
                gb3.iter_mut().for_each(|g| *g *= inv);
                t += 1;
                l1.adam_step(&gw1, &gb1, params.lr, t);
                l2.adam_step(&gw2, &gb2, params.lr, t);
                l3.adam_step(&gw3, &gb3, params.lr, t);
            }
        }
        Mlp { l1, l2, l3 }
    }
}

impl Regressor for Mlp {
    fn predict(&self, x: &[f64]) -> f64 {
        let mut a1 = Vec::new();
        let mut a2 = Vec::new();
        let mut a3 = Vec::new();
        self.l1.forward(x, &mut a1);
        relu_inplace(&mut a1);
        self.l2.forward(&a1, &mut a2);
        relu_inplace(&mut a2);
        self.l3.forward(&a2, &mut a3);
        a3[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_linear_function() {
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 60.0]).collect();
        let y: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] - 1.0).collect();
        let m = Mlp::fit(&Matrix::from_rows(&rows), &y, MlpParams::default());
        for probe in [0.1, 0.5, 0.9] {
            let pred = m.predict(&[probe]);
            assert!((pred - (3.0 * probe - 1.0)).abs() < 0.15, "at {probe}: {pred}");
        }
    }

    #[test]
    fn learns_xor() {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for a in 0..2 {
            for b in 0..2 {
                for _ in 0..20 {
                    rows.push(vec![a as f64, b as f64]);
                    y.push((a ^ b) as f64);
                }
            }
        }
        let m = Mlp::fit(
            &Matrix::from_rows(&rows),
            &y,
            MlpParams { epochs: 400, ..Default::default() },
        );
        assert!(m.predict(&[0.0, 0.0]) < 0.3);
        assert!(m.predict(&[1.0, 0.0]) > 0.7);
        assert!(m.predict(&[0.0, 1.0]) > 0.7);
        assert!(m.predict(&[1.0, 1.0]) < 0.3);
    }

    #[test]
    fn deterministic_given_seed() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0]).collect();
        let x = Matrix::from_rows(&rows);
        let a = Mlp::fit(&x, &y, MlpParams::default());
        let b = Mlp::fit(&x, &y, MlpParams::default());
        assert_eq!(a.predict(&[3.0]), b.predict(&[3.0]));
    }
}

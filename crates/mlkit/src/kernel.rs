//! RBF-kernel ridge regression — the paper's "SVM with RBF kernel".
//!
//! §IV-C trains the CN regressor by converting targets to `ln CN` and
//! minimizing *mean squared error* with an RBF-kernel SVM. An SVM under a
//! squared-error loss is the least-squares SVM (Suykens & Vandewalle,
//! 1999), whose solution coincides with kernel ridge regression:
//! `α = (K + λI)⁻¹ y`, prediction `f(x) = Σᵢ αᵢ k(x, xᵢ)`.
//! We solve the system exactly via Cholesky — no SMO iterations needed,
//! and the fit is deterministic.

use crate::matrix::{solve_spd, Matrix};
use crate::Regressor;

/// Gaussian (RBF) kernel `exp(-gamma * ||a - b||²)`.
#[inline]
pub fn rbf(a: &[f64], b: &[f64], gamma: f64) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let sq: f64 = a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum();
    (-gamma * sq).exp()
}

/// A fitted RBF kernel ridge regressor.
#[derive(Clone, Debug)]
pub struct KernelRidge {
    gamma: f64,
    train_x: Matrix,
    alpha: Vec<f64>,
}

impl KernelRidge {
    /// Fits `(K + λI) α = y` on training rows `x` and targets `y`.
    ///
    /// * `gamma` — RBF width; for `d` binary features `1/d` is a solid
    ///   default (distances are then in `[0, 1]` after scaling by the
    ///   kernel).
    /// * `lambda` — ridge regularizer; must be positive.
    ///
    /// Returns `None` only if the regularized kernel matrix cannot be
    /// factorized even with jitter (which for `λ > 0` indicates NaNs in
    /// the input).
    pub fn fit(x: &Matrix, y: &[f64], gamma: f64, lambda: f64) -> Option<Self> {
        assert_eq!(x.rows(), y.len(), "row/target count mismatch");
        assert!(lambda > 0.0, "lambda must be positive");
        assert!(gamma > 0.0, "gamma must be positive");
        let n = x.rows();
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            k[(i, i)] = 1.0 + lambda;
            for j in 0..i {
                let v = rbf(x.row(i), x.row(j), gamma);
                k[(i, j)] = v;
                k[(j, i)] = v;
            }
        }
        let alpha = solve_spd(&k, y)?;
        Some(KernelRidge { gamma, train_x: x.clone(), alpha })
    }

    /// Number of stored training vectors (= support size; LS-SVM solutions
    /// are dense).
    pub fn n_support(&self) -> usize {
        self.train_x.rows()
    }

    /// Approximate heap footprint in bytes (training matrix + duals); the
    /// index-size accounting of Fig. 6 charges GPH for this.
    pub fn size_bytes(&self) -> usize {
        (self.train_x.rows() * self.train_x.cols() + self.alpha.len()) * 8
    }
}

impl Regressor for KernelRidge {
    fn predict(&self, x: &[f64]) -> f64 {
        let mut acc = 0.0;
        for i in 0..self.train_x.rows() {
            acc += self.alpha[i] * rbf(self.train_x.row(i), x, self.gamma);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rbf_properties() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert!((rbf(&a, &a, 0.7) - 1.0).abs() < 1e-12);
        let v = rbf(&a, &b, 0.5);
        assert!((v - (-1.0f64).exp()).abs() < 1e-12);
        assert_eq!(rbf(&a, &b, 0.5), rbf(&b, &a, 0.5));
    }

    #[test]
    fn interpolates_training_points_with_small_lambda() {
        // y = XOR-ish nonlinear function of 2 binary features.
        let x = Matrix::from_rows(&[vec![0., 0.], vec![0., 1.], vec![1., 0.], vec![1., 1.]]);
        let y = [0.0, 1.0, 1.0, 0.0];
        let m = KernelRidge::fit(&x, &y, 1.0, 1e-8).unwrap();
        for (i, &yi) in y.iter().enumerate() {
            assert!((m.predict(x.row(i)) - yi).abs() < 1e-3, "i={i}");
        }
    }

    #[test]
    fn smooth_function_generalizes() {
        // f(x) = sin(2x) on a grid; test midpoints.
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 40.0 * 3.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|v| (2.0 * v[0]).sin()).collect();
        let m = KernelRidge::fit(&Matrix::from_rows(&xs), &ys, 8.0, 1e-6).unwrap();
        for i in 0..39 {
            let mid = (xs[i][0] + xs[i + 1][0]) / 2.0;
            let pred = m.predict(&[mid]);
            assert!((pred - (2.0 * mid).sin()).abs() < 0.05, "at {mid}: {pred}");
        }
    }

    #[test]
    fn heavy_regularization_shrinks_towards_zero() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]);
        let y = [10.0, -10.0];
        let m = KernelRidge::fit(&x, &y, 1.0, 1e6).unwrap();
        assert!(m.predict(&[0.0]).abs() < 0.1);
    }
}

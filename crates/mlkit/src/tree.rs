//! CART regression trees and random forests (the "RF" model of Table III).

use crate::matrix::Matrix;
use crate::Regressor;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A node of a binary regression tree, stored flat.
#[derive(Clone, Debug)]
enum Node {
    /// Internal split: `feature`, `threshold`, left child, right child.
    /// Samples go left when `x[feature] <= threshold`.
    Split { feature: u32, threshold: f64, left: u32, right: u32 },
    /// Leaf prediction.
    Leaf(f64),
}

/// Hyper-parameters for tree growth.
#[derive(Clone, Copy, Debug)]
pub struct TreeParams {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples required to split a node further.
    pub min_samples_split: usize,
    /// Number of candidate features per split (`None` = all).
    pub max_features: Option<usize>,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams { max_depth: 12, min_samples_split: 4, max_features: None }
    }
}

/// A fitted CART regression tree (variance-reduction splits, mean leaves).
#[derive(Clone, Debug)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

impl RegressionTree {
    /// Fits a tree on rows of `x` against `y`. `rng` drives feature
    /// subsampling when `params.max_features` is set.
    pub fn fit(x: &Matrix, y: &[f64], params: TreeParams, rng: &mut impl Rng) -> Self {
        assert_eq!(x.rows(), y.len());
        let idx: Vec<u32> = (0..x.rows() as u32).collect();
        let mut tree = RegressionTree { nodes: Vec::new() };
        tree.grow(x, y, idx, params, 0, rng);
        tree
    }

    fn grow(
        &mut self,
        x: &Matrix,
        y: &[f64],
        idx: Vec<u32>,
        params: TreeParams,
        depth: usize,
        rng: &mut impl Rng,
    ) -> u32 {
        let node_id = self.nodes.len() as u32;
        let mean = idx.iter().map(|&i| y[i as usize]).sum::<f64>() / idx.len().max(1) as f64;
        self.nodes.push(Node::Leaf(mean));
        if depth >= params.max_depth || idx.len() < params.min_samples_split {
            return node_id;
        }
        let d = x.cols();
        let n_feat = params.max_features.unwrap_or(d).min(d).max(1);
        // Sample candidate features without replacement.
        let mut feats: Vec<usize> = (0..d).collect();
        for i in 0..n_feat {
            let j = rng.random_range(i..d);
            feats.swap(i, j);
        }
        let feats = &feats[..n_feat];

        let total_sum: f64 = idx.iter().map(|&i| y[i as usize]).sum();
        let total_sq: f64 = idx.iter().map(|&i| y[i as usize] * y[i as usize]).sum();
        let n = idx.len() as f64;
        let parent_sse = total_sq - total_sum * total_sum / n;

        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
        let mut vals: Vec<(f64, f64)> = Vec::with_capacity(idx.len());
        for &f in feats {
            vals.clear();
            vals.extend(idx.iter().map(|&i| (x[(i as usize, f)], y[i as usize])));
            vals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN features"));
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            for k in 0..vals.len() - 1 {
                left_sum += vals[k].1;
                left_sq += vals[k].1 * vals[k].1;
                if vals[k].0 == vals[k + 1].0 {
                    continue; // cannot split between equal values
                }
                let nl = (k + 1) as f64;
                let nr = n - nl;
                let right_sum = total_sum - left_sum;
                let right_sq = total_sq - left_sq;
                let sse =
                    (left_sq - left_sum * left_sum / nl) + (right_sq - right_sum * right_sum / nr);
                if best.is_none_or(|(_, _, b)| sse < b) {
                    let thr = (vals[k].0 + vals[k + 1].0) / 2.0;
                    best = Some((f, thr, sse));
                }
            }
        }
        let Some((feature, threshold, sse)) = best else {
            return node_id;
        };
        if parent_sse - sse < 1e-12 {
            return node_id; // no variance reduction
        }
        let (left_idx, right_idx): (Vec<u32>, Vec<u32>) =
            idx.iter().partition(|&&i| x[(i as usize, feature)] <= threshold);
        if left_idx.is_empty() || right_idx.is_empty() {
            return node_id;
        }
        let left = self.grow(x, y, left_idx, params, depth + 1, rng);
        let right = self.grow(x, y, right_idx, params, depth + 1, rng);
        self.nodes[node_id as usize] =
            Node::Split { feature: feature as u32, threshold, left, right };
        node_id
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }
}

impl Regressor for RegressionTree {
    fn predict(&self, x: &[f64]) -> f64 {
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf(v) => return *v,
                Node::Split { feature, threshold, left, right } => {
                    at = if x[*feature as usize] <= *threshold {
                        *left as usize
                    } else {
                        *right as usize
                    };
                }
            }
        }
    }
}

/// A bagged ensemble of regression trees.
#[derive(Clone, Debug)]
pub struct RandomForest {
    trees: Vec<RegressionTree>,
}

impl RandomForest {
    /// Fits `n_trees` trees on bootstrap resamples of `(x, y)` with
    /// `sqrt(d)` feature subsampling (the standard RF recipe).
    pub fn fit(x: &Matrix, y: &[f64], n_trees: usize, params: TreeParams, seed: u64) -> Self {
        assert_eq!(x.rows(), y.len());
        let n = x.rows();
        let d = x.cols();
        let sub = TreeParams {
            max_features: params
                .max_features
                .or_else(|| Some(((d as f64).sqrt().ceil() as usize).max(1))),
            ..params
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut trees = Vec::with_capacity(n_trees);
        for _ in 0..n_trees {
            // Bootstrap resample.
            let mut bx = Vec::with_capacity(n);
            let mut by = Vec::with_capacity(n);
            for _ in 0..n {
                let i = rng.random_range(0..n);
                bx.push(x.row(i).to_vec());
                by.push(y[i]);
            }
            trees.push(RegressionTree::fit(&Matrix::from_rows(&bx), &by, sub, &mut rng));
        }
        RandomForest { trees }
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Regressor for RandomForest {
    fn predict(&self, x: &[f64]) -> f64 {
        let s: f64 = self.trees.iter().map(|t| t.predict(x)).sum();
        s / self.trees.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> (Matrix, Vec<f64>) {
        // y = 10 if x0 > 0.5 else 2 — one split suffices.
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![(i % 2) as f64, i as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|r| if r[0] > 0.5 { 10.0 } else { 2.0 }).collect();
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn tree_learns_step_function() {
        let (x, y) = step_data();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let t = RegressionTree::fit(&x, &y, TreeParams::default(), &mut rng);
        assert!((t.predict(&[1.0, 3.0]) - 10.0).abs() < 1e-9);
        assert!((t.predict(&[0.0, 3.0]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn stump_limits_depth() {
        let (x, y) = step_data();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let t = RegressionTree::fit(
            &x,
            &y,
            TreeParams { max_depth: 0, ..Default::default() },
            &mut rng,
        );
        assert_eq!(t.n_nodes(), 1);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        assert!((t.predict(&[1.0, 0.0]) - mean).abs() < 1e-9);
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]);
        let y = [5.0, 5.0, 5.0];
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let t = RegressionTree::fit(&x, &y, TreeParams::default(), &mut rng);
        assert_eq!(t.n_nodes(), 1);
        assert_eq!(t.predict(&[7.0]), 5.0);
    }

    #[test]
    fn forest_beats_mean_on_xor() {
        // XOR of two binary features — needs depth 2 interactions.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for a in 0..2 {
            for b in 0..2 {
                for _ in 0..25 {
                    rows.push(vec![a as f64, b as f64]);
                    y.push(((a ^ b) * 8) as f64);
                }
            }
        }
        let x = Matrix::from_rows(&rows);
        let f = RandomForest::fit(&x, &y, 30, TreeParams::default(), 3);
        assert!(f.predict(&[0.0, 1.0]) > 6.0);
        assert!(f.predict(&[1.0, 1.0]) < 2.0);
    }

    #[test]
    fn forest_is_deterministic_per_seed() {
        let (x, y) = step_data();
        let a = RandomForest::fit(&x, &y, 5, TreeParams::default(), 9);
        let b = RandomForest::fit(&x, &y, 5, TreeParams::default(), 9);
        assert_eq!(a.predict(&[1.0, 2.0]), b.predict(&[1.0, 2.0]));
    }
}

//! Regression metrics, including the paper's relative-error measure.

/// Mean squared error.
pub fn mse(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter().zip(truth).map(|(&p, &t)| (p - t) * (p - t)).sum::<f64>() / pred.len() as f64
}

/// Mean *relative* error `mean(|pred - truth| / max(truth, 1))` — the
/// "percentage error" reported in Table III. Truth values below 1 are
/// clamped to avoid division blow-ups (candidate counts are ≥ 0 integers).
pub fn mean_relative_error(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter().zip(truth).map(|(&p, &t)| (p - t).abs() / t.max(1.0)).sum::<f64>()
        / pred.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_known() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 4.0]), 2.0);
        assert_eq!(mse(&[], &[]), 0.0);
    }

    #[test]
    fn relative_error_known() {
        // |9-10|/10 = 0.1 ; |22-20|/20 = 0.1 -> mean 0.1
        let e = mean_relative_error(&[9.0, 22.0], &[10.0, 20.0]);
        assert!((e - 0.1).abs() < 1e-12);
    }

    #[test]
    fn relative_error_clamps_small_truth() {
        // truth 0.1 clamps to 1 -> |2-0.1|/1
        let e = mean_relative_error(&[2.0], &[0.1]);
        assert!((e - 1.9).abs() < 1e-12);
    }
}

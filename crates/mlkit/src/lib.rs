//! # mlkit
//!
//! A small, dependency-free machine-learning substrate built for GPH's
//! learned candidate-number estimator (paper §IV-C and Table III):
//!
//! * [`KernelRidge`] — RBF-kernel ridge regression. The paper trains "an
//!   SVM model with RBF kernel" under a *mean squared error* loss on
//!   `ln CN`; an SVM with squared-error loss is the least-squares SVM,
//!   whose exact solution is kernel ridge regression — solved here by
//!   Cholesky factorization.
//! * [`RandomForest`] — bagged CART regression trees (the "RF" row of
//!   Table III).
//! * [`Mlp`] — a 3-layer perceptron regressor trained with Adam (the
//!   "DNN" row of Table III).
//! * [`Matrix`], [`cholesky`] — the minimal dense linear algebra they
//!   need.
//! * [`metrics`] — the relative-error measure the paper reports.
//!
//! Everything is deterministic given a seed, so Table III is exactly
//! reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernel;
pub mod matrix;
pub mod metrics;
pub mod mlp;
pub mod scale;
pub mod tree;

pub use kernel::KernelRidge;
pub use matrix::{cholesky, Matrix};
pub use mlp::Mlp;
pub use scale::StandardScaler;
pub use tree::{RandomForest, RegressionTree};

/// A fitted regression model mapping feature vectors to a scalar.
pub trait Regressor {
    /// Predicts the target for one feature vector.
    fn predict(&self, x: &[f64]) -> f64;

    /// Predicts targets for each row of `xs`.
    fn predict_rows(&self, xs: &Matrix) -> Vec<f64> {
        (0..xs.rows()).map(|i| self.predict(xs.row(i))).collect()
    }
}

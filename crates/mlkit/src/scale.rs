//! Feature standardization.

use crate::matrix::Matrix;

/// Per-feature standardizer: `x' = (x - mean) / std`.
///
/// Constant features (std = 0) are mapped to 0 rather than NaN.
#[derive(Clone, Debug)]
pub struct StandardScaler {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl StandardScaler {
    /// Fits means and standard deviations over the rows of `x`.
    pub fn fit(x: &Matrix) -> Self {
        let (n, d) = (x.rows(), x.cols());
        let mut mean = vec![0.0; d];
        for i in 0..n {
            for (m, &v) in mean.iter_mut().zip(x.row(i)) {
                *m += v;
            }
        }
        let nf = (n.max(1)) as f64;
        mean.iter_mut().for_each(|m| *m /= nf);
        let mut var = vec![0.0; d];
        for i in 0..n {
            for j in 0..d {
                let c = x[(i, j)] - mean[j];
                var[j] += c * c;
            }
        }
        let std = var.iter().map(|&v| (v / nf).sqrt()).collect();
        StandardScaler { mean, std }
    }

    /// Transforms one vector in place.
    pub fn transform_inplace(&self, x: &mut [f64]) {
        for ((v, &m), &s) in x.iter_mut().zip(&self.mean).zip(&self.std) {
            *v = if s > 0.0 { (*v - m) / s } else { 0.0 };
        }
    }

    /// Transforms every row of `x` into a new matrix.
    pub fn transform(&self, x: &Matrix) -> Matrix {
        let mut out = x.clone();
        for i in 0..out.rows() {
            self.transform_inplace(out.row_mut(i));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_to_zero_mean_unit_var() {
        let x = Matrix::from_rows(&[vec![1.0, 5.0], vec![3.0, 5.0], vec![5.0, 5.0]]);
        let sc = StandardScaler::fit(&x);
        let t = sc.transform(&x);
        // col 0: mean 3, std sqrt(8/3)
        let col0: Vec<f64> = (0..3).map(|i| t[(i, 0)]).collect();
        let mean: f64 = col0.iter().sum::<f64>() / 3.0;
        assert!(mean.abs() < 1e-12);
        // constant col 1 -> all zeros, no NaN
        for i in 0..3 {
            assert_eq!(t[(i, 1)], 0.0);
        }
    }
}

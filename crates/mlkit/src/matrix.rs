//! Minimal dense linear algebra: row-major matrices and Cholesky solves.

use std::fmt;

/// A dense row-major `f64` matrix.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds from a row-major data vector (`data.len() == rows * cols`).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Builds from row slices.
    pub fn from_rows(rows_data: &[Vec<f64>]) -> Self {
        let rows = rows_data.len();
        let cols = rows_data.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(rows * cols);
        for r in rows_data {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix { rows, cols, data }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix product `self * rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions differ");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order: streams rhs rows, friendly to the cache.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rrow = rhs.row(k);
                let orow = out.row_mut(i);
                for (o, &r) in orow.iter_mut().zip(rrow) {
                    *o += a * r;
                }
            }
        }
        out
    }

    /// Matrix-vector product.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len());
        (0..self.rows).map(|i| self.row(i).iter().zip(v).map(|(&a, &b)| a * b).sum()).collect()
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", self.row(i))?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

/// Cholesky factorization of a symmetric positive-definite matrix:
/// returns lower-triangular `L` with `L Lᵀ = A`, or `None` if `A` is not
/// positive definite (within a small tolerance).
pub fn cholesky(a: &Matrix) -> Option<Matrix> {
    assert_eq!(a.rows(), a.cols(), "cholesky needs a square matrix");
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 1e-12 {
                    return None;
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Some(l)
}

/// Solves `A x = b` given the Cholesky factor `L` of `A` (forward then
/// backward substitution).
pub fn cholesky_solve(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = l.rows();
    assert_eq!(b.len(), n);
    // L y = b
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[(i, k)] * y[k];
        }
        y[i] = sum / l[(i, i)];
    }
    // Lᵀ x = y
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = y[i];
        for k in (i + 1)..n {
            sum -= l[(k, i)] * x[k];
        }
        x[i] = sum / l[(i, i)];
    }
    x
}

/// Solves `A x = b` for symmetric positive-definite `A`, adding growing
/// diagonal jitter when the factorization fails — the standard trick for
/// kernel matrices that are PSD up to rounding.
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    if let Some(l) = cholesky(a) {
        return Some(cholesky_solve(&l, b));
    }
    let n = a.rows();
    let mut jitter = 1e-10;
    for _ in 0..8 {
        let mut aj = a.clone();
        for i in 0..n {
            aj[(i, i)] += jitter;
        }
        if let Some(l) = cholesky(&aj) {
            return Some(cholesky_solve(&l, b));
        }
        jitter *= 10.0;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[58., 64.]);
        assert_eq!(c.row(1), &[139., 154.]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn cholesky_of_known_spd() {
        // A = [[4, 2], [2, 3]] -> L = [[2, 0], [1, sqrt(2)]]
        let a = Matrix::from_vec(2, 2, vec![4., 2., 2., 3.]);
        let l = cholesky(&a).unwrap();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 1.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 2f64.sqrt()).abs() < 1e-12);
        // reconstruct
        let recon = l.matmul(&l.transpose());
        for i in 0..2 {
            for j in 0..2 {
                assert!((recon[(i, j)] - a[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 2., 1.]); // eigenvalues 3, -1
        assert!(cholesky(&a).is_none());
    }

    #[test]
    fn solve_recovers_solution() {
        let a = Matrix::from_vec(3, 3, vec![6., 2., 1., 2., 5., 2., 1., 2., 4.]);
        let x_true = [1.0, -2.0, 3.0];
        let b = a.matvec(&x_true);
        let x = solve_spd(&a, &b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10, "{x:?}");
        }
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        assert_eq!(a.matvec(&[5., 6.]), vec![17., 39.]);
    }
}

//! Out-of-core serving benchmark: the same snapshot served resident and
//! file-backed (corpus at ~2x the page-cache budget), with the headline
//! numbers written to `BENCH_coldstore.json`.
//!
//! Companion to the `smoke` experiment: where smoke pins the resident
//! build→snapshot→restore→serve pipeline, this pins the cold path —
//! lazy `warm_start` (footers and metadata only; the report asserts the
//! restore paged **zero** payload bytes), exact query answers served by
//! paging 4–64 KiB blocks through the clock-eviction cache, and the
//! price of running at half the corpus's memory. Every query is
//! cross-checked against the resident fleet, so a divergence in the
//! cold read path fails the job rather than skewing a number. A
//! quarter-size fleet is restored alongside the full one so the JSON
//! carries a restore-time series over corpus size: resident restore
//! grows with the corpus, file-backed restore should not.

use crate::util::prepare;
use crate::Scale;
use datagen::Profile;
use gph::coldstore::StorageMode;
use gph::engine::GphConfig;
use gph_serve::{QueryService, ServiceConfig, ShardedIndex};
use hamming_core::Dataset;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Number of shards the fleet runs.
const SHARDS: usize = 2;
/// Threshold the query stream uses.
const TAU: u32 = 16;
/// Queries per submitted batch (one giant batch would serialize on a
/// single worker and make the latency quantiles degenerate).
const BATCH: usize = 4;

/// Bytes of snapshot payload in `dir` (the shard files; the manifest is
/// noise). This is the on-disk corpus the budget is sized against.
fn snapshot_bytes(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .expect("coldstore: read snapshot dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".gphs"))
        .map(|e| e.metadata().map(|m| m.len()).unwrap_or(0))
        .sum()
}

/// Serves the whole query stream through the service path; returns
/// (per-query result ids, wall seconds, p50 ms, p95 ms).
fn serve_stream(index: Arc<ShardedIndex>, queries: &Dataset) -> (Vec<Vec<u32>>, f64, f64, f64) {
    let service = QueryService::new(index, ServiceConfig::default());
    let t = Instant::now();
    let tickets: Vec<_> = (0..queries.len())
        .step_by(BATCH)
        .map(|start| {
            let chunk: Vec<&[u64]> =
                (start..(start + BATCH).min(queries.len())).map(|i| queries.row(i)).collect();
            service.submit_batch(&chunk, TAU)
        })
        .collect();
    let ids: Vec<Vec<u32>> = tickets
        .into_iter()
        .flat_map(|t| t.wait())
        .map(|r| r.ids().expect("coldstore: unlimited budget never rejects").to_vec())
        .collect();
    let wall = t.elapsed().as_secs_f64();
    let stats = service.stats();
    (ids, wall, stats.latency_p50_ns as f64 / 1e6, stats.latency_p95_ns as f64 / 1e6)
}

/// Builds a fleet over the first `rows` of `data`, snapshots it, and
/// returns the directory (caller removes it).
fn build_snapshot(data: &Dataset, rows: usize, cfg: &GphConfig, tag: &str) -> std::path::PathBuf {
    let mut sub = Dataset::new(data.dim());
    for i in 0..rows.min(data.len()) {
        sub.push_row(data.row(i)).expect("coldstore: subset rows");
    }
    let built = ShardedIndex::build(&sub, SHARDS, cfg).expect("coldstore: build");
    let dir =
        std::env::temp_dir().join(format!("gph_bench_coldstore_{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    built.snapshot(&dir).expect("coldstore: snapshot");
    dir
}

/// Runs the resident-vs-file-backed pass and writes the JSON report. The
/// output path comes from `BENCH_COLDSTORE_OUT` (default
/// `BENCH_coldstore.json`); any failure — including a cold restore that
/// pages payload bytes eagerly, or a cold query stream that diverges
/// from the resident one — panics, which is what the CI job wants to
/// fail on.
pub fn run(scale: Scale) {
    let profile = Profile::synthetic_gamma(0.25);
    let qs = prepare(&profile, scale, 0xC01D);
    run_inner(&qs.data, &qs.queries);
}

fn run_inner(data: &Dataset, queries: &Dataset) {
    let cfg = GphConfig::new(GphConfig::suggested_m(data.dim()), TAU as usize);
    let dir = build_snapshot(data, data.len(), &cfg, "full");
    let corpus_bytes = snapshot_bytes(&dir);
    // The headline configuration: the corpus is twice the memory budget,
    // so roughly half of it can ever be resident at once.
    let budget = (corpus_bytes / 2).max(1);

    // Resident restore + serve: the baseline everything is checked
    // against.
    let t = Instant::now();
    let resident = Arc::new(ShardedIndex::restore(&dir).expect("coldstore: resident restore"));
    let restore_resident_s = t.elapsed().as_secs_f64();
    let (ids_resident, wall_r, p50_r, p95_r) = serve_stream(Arc::clone(&resident), queries);
    let qps_resident = queries.len() as f64 / wall_r.max(1e-9);

    // File-backed restore: maps footers and metadata, pages nothing.
    let t = Instant::now();
    let cold = Arc::new(
        ShardedIndex::restore_with_storage(&dir, StorageMode::FileBacked { budget_bytes: budget })
            .expect("coldstore: file-backed restore"),
    );
    let restore_cold_s = t.elapsed().as_secs_f64();
    let fresh = cold.page_cache_stats().expect("coldstore: cold fleet has a page cache");
    assert_eq!(
        fresh.resident_bytes, 0,
        "coldstore: file-backed restore paged segment payload eagerly"
    );

    // Serve the same stream out-of-core and pin exactness.
    let (ids_cold, wall_c, p50_c, p95_c) = serve_stream(Arc::clone(&cold), queries);
    let qps_cold = queries.len() as f64 / wall_c.max(1e-9);
    assert_eq!(ids_cold, ids_resident, "coldstore: file-backed fleet diverged from resident");
    let pc = cold.page_cache_stats().expect("coldstore: cold fleet has a page cache");
    assert!(pc.hits + pc.misses > 0, "coldstore: queries never touched the page cache");
    assert!(
        pc.resident_bytes <= budget,
        "coldstore: {} resident bytes exceed the {budget}-byte budget",
        pc.resident_bytes
    );
    let hit_rate = pc.hits as f64 / (pc.hits + pc.misses).max(1) as f64;

    // Restore-time-vs-corpus series: a quarter-size fleet. Resident
    // restore cost tracks corpus size; file-backed restore reads only
    // footers and metadata, so its cost should barely move.
    let dir_q = build_snapshot(data, data.len() / 4, &cfg, "quarter");
    let t = Instant::now();
    let _rq = ShardedIndex::restore(&dir_q).expect("coldstore: quarter resident restore");
    let restore_resident_quarter_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let cq = ShardedIndex::restore_with_storage(
        &dir_q,
        StorageMode::FileBacked { budget_bytes: budget },
    )
    .expect("coldstore: quarter file-backed restore");
    let restore_cold_quarter_s = t.elapsed().as_secs_f64();
    assert_eq!(
        cq.page_cache_stats().expect("coldstore: quarter fleet has a page cache").resident_bytes,
        0,
        "coldstore: quarter file-backed restore paged payload eagerly"
    );
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&dir_q).ok();

    let json = format!(
        "{{\n  \"experiment\": \"coldstore\",\n  \"rows\": {},\n  \"dims\": {},\n  \
         \"queries\": {},\n  \"shards\": {},\n  \"tau\": {},\n  \
         \"corpus_bytes\": {},\n  \"budget_bytes\": {},\n  \
         \"restore_resident_s\": {:.4},\n  \"restore_cold_s\": {:.4},\n  \
         \"restore_resident_quarter_s\": {:.4},\n  \"restore_cold_quarter_s\": {:.4},\n  \
         \"qps_resident\": {:.1},\n  \"qps_cold\": {:.1},\n  \
         \"p50_resident_ms\": {:.4},\n  \"p95_resident_ms\": {:.4},\n  \
         \"p50_cold_ms\": {:.4},\n  \"p95_cold_ms\": {:.4},\n  \
         \"cache_hits\": {},\n  \"cache_misses\": {},\n  \"cache_evictions\": {},\n  \
         \"cache_hit_rate\": {:.4},\n  \"cache_resident_bytes\": {}\n}}\n",
        data.len(),
        data.dim(),
        queries.len(),
        SHARDS,
        TAU,
        corpus_bytes,
        budget,
        restore_resident_s,
        restore_cold_s,
        restore_resident_quarter_s,
        restore_cold_quarter_s,
        qps_resident,
        qps_cold,
        p50_r,
        p95_r,
        p50_c,
        p95_c,
        pc.hits,
        pc.misses,
        pc.evictions,
        hit_rate,
        pc.resident_bytes,
    );
    let out =
        std::env::var("BENCH_COLDSTORE_OUT").unwrap_or_else(|_| "BENCH_coldstore.json".into());
    std::fs::write(&out, &json).expect("coldstore: write report");

    println!("## coldstore ({} rows, corpus at 2x the memory budget)\n", data.len());
    println!("| metric | resident | file-backed |");
    println!("|---|---|---|");
    println!("| restore | {restore_resident_s:.3} s | {restore_cold_s:.3} s |");
    println!(
        "| restore (quarter corpus) | {restore_resident_quarter_s:.3} s | \
         {restore_cold_quarter_s:.3} s |"
    );
    println!("| QPS | {qps_resident:.0} | {qps_cold:.0} |");
    println!("| p95 latency | {p95_r:.2} ms | {p95_c:.2} ms |");
    println!(
        "| page cache | — | {:.0}% hits, {} evictions, {} B resident |",
        hit_rate * 100.0,
        pc.evictions,
        pc.resident_bytes
    );
    println!("\nreport written to {out}");
}

//! One module per paper artifact. Every `run(scale)` prints markdown
//! tables carrying the same rows/series the paper's figure or table
//! reports (see the workspace-level `PAPER.md` for the experiment
//! index and known deviations).

pub mod ablation;
pub mod allocation;
pub mod calibration;
pub mod coldstore;
pub mod comparison;
pub mod estimators;
pub mod fleet;
pub mod hotpath;
pub mod msweep;
pub mod mutations;
pub mod netload;
pub mod obs;
pub mod partitioning;
pub mod scalecheck;
pub mod scaling;
pub mod sizes;
pub mod skewprofile;
pub mod smoke;

use crate::Scale;

/// Experiment ids accepted by [`dispatch`].
pub const EXPERIMENTS: &[&str] = &[
    "fig1",
    "fig2a",
    "fig2b",
    "fig3",
    "table3",
    "fig4",
    "fig5",
    "fig6",
    "table4",
    "fig7",
    "fig8abc",
    "fig8d",
    "fig8ef",
    "ablation",
    "scalecheck",
    "smoke",
    "hotpath",
    "mutations",
    "netload",
    "fleet",
    "fleetobs",
    "obs",
    "coldstore",
    "all",
];

/// Dispatches an experiment by id. Returns false for unknown ids.
pub fn dispatch(exp: &str, scale: Scale) -> bool {
    match exp {
        "fig1" => skewprofile::run(scale),
        "fig2a" => calibration::run_fig2a(scale),
        "fig2b" => calibration::run_fig2b(scale),
        "fig3" => allocation::run(scale),
        "table3" => estimators::run(scale),
        "fig4" => partitioning::run(scale),
        "fig5" => msweep::run(scale),
        "fig6" => sizes::run_fig6(scale),
        "table4" => sizes::run_table4(scale),
        "fig7" => comparison::run(scale),
        "fig8abc" => scaling::run_dims(scale),
        "fig8d" => scaling::run_skew(scale),
        "fig8ef" => scaling::run_workload_mismatch(scale),
        "ablation" => ablation::run(scale),
        "scalecheck" => scalecheck::run(scale),
        "smoke" => smoke::run(scale),
        "hotpath" => hotpath::run(scale),
        "mutations" => mutations::run(scale),
        "netload" => netload::run(scale),
        "fleet" => fleet::run(scale),
        "fleetobs" => fleet::run_obs(scale),
        "obs" => obs::run(scale),
        "coldstore" => coldstore::run(scale),
        "all" => {
            for exp in EXPERIMENTS.iter().filter(|&&e| e != "all") {
                dispatch(exp, scale);
            }
        }
        _ => return false,
    }
    true
}

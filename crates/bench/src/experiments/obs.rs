//! Observability overhead benchmark: the same query stream pushed
//! through an in-process [`QueryService`] under three tracing policies —
//! disabled, sampled (1 in 64), and always-on — with QPS and the
//! overhead relative to the disabled baseline written to
//! `BENCH_obs.json`.
//!
//! Companion to `netload` (network path) and `hotpath` (engine path):
//! this pins the cost of the gph-obs layer itself. The ISSUE's
//! acceptance bar is ≤ 5% QPS overhead for sampled tracing at a rate of
//! 1/64 or coarser; the measured percentages land in the report so CI
//! artifacts track it run over run (the job does not hard-assert a
//! noisy ratio). One query per run is cross-checked against a
//! brute-force scan so a correctness regression fails the job rather
//! than skewing a number.

use crate::util::prepare;
use crate::Scale;
use datagen::Profile;
use gph::engine::GphConfig;
use gph_obs::TraceConfig;
use gph_serve::{QueryService, ServiceConfig, ShardedIndex};
use hamming_core::Dataset;
use std::sync::Arc;
use std::time::Instant;

/// Shards behind the service.
const SHARDS: usize = 2;
/// Threshold the query stream uses.
const TAU: u32 = 16;
/// Queries per submitted batch (one service job).
const BATCH: usize = 16;
/// Interleaved measurement rounds per policy (see `run_inner`).
const ROUNDS: u64 = 10;

/// The swept tracing policies: `(label, sample_every)`.
const POLICIES: [(&str, u64); 3] = [("off", 0), ("sampled_64", 64), ("always", 1)];

/// Runs the sweep and writes the JSON report to `BENCH_OBS_OUT`
/// (default `BENCH_obs.json`); any failure panics, which is what the CI
/// job wants to fail on.
pub fn run(scale: Scale) {
    let profile = Profile::synthetic_gamma(0.25);
    let qs = prepare(&profile, scale, 0x0B5E11);
    run_inner(&qs.data, &qs.queries, scale);
}

struct PolicyResult {
    label: &'static str,
    sample_every: u64,
    queries: u64,
    qps: f64,
    overhead_pct: f64,
    slow_ring: usize,
}

/// Pushes `n` queries through the service in `BATCH`-sized jobs,
/// asserting every one executes; returns the count pushed.
fn run_stream(service: &QueryService, queries: &Dataset, n: u64) -> u64 {
    let mut tickets = Vec::new();
    let mut submitted = 0u64;
    while submitted < n {
        let chunk: Vec<&[u64]> = (0..BATCH)
            .take((n - submitted) as usize)
            .map(|j| queries.row(((submitted + j as u64) % queries.len() as u64) as usize))
            .collect();
        submitted += chunk.len() as u64;
        tickets.push(service.submit_batch(&chunk, TAU));
    }
    for t in tickets {
        for resp in t.wait() {
            assert!(resp.ids().is_some(), "obs: every query executes");
        }
    }
    submitted
}

fn run_inner(data: &Dataset, queries: &Dataset, scale: Scale) {
    let cfg = GphConfig::new(GphConfig::suggested_m(data.dim()), TAU as usize);
    let t_build = Instant::now();
    let index = Arc::new(ShardedIndex::build(data, SHARDS, &cfg).expect("obs: build"));
    let build_s = t_build.elapsed().as_secs_f64();

    // Correctness gate before the clock starts: one serviced query must
    // equal a brute-force scan.
    let probe = queries.row(0);
    let expect: Vec<u32> = (0..data.len())
        .filter(|&i| hamming_core::distance::hamming_within(data.row(i), probe, TAU).is_some())
        .map(|i| i as u32)
        .collect();
    // Queries are cheap here (no network hop), so run plenty of them —
    // the off-vs-sampled delta is small and drowns in noise on short
    // runs.
    let total_queries = (scale.base_rows * 2).max(6_000) as u64;

    // One service per policy, all alive at once; the measured stream is
    // split into rounds that cycle through the policies, so slow drift
    // on the host (thermal, co-tenants) hits every policy alike instead
    // of whichever happened to run last. Caching off: a benchmark over
    // a small repeated query set would otherwise measure the LRU, not
    // the tracing overhead.
    let services: Vec<QueryService> = POLICIES
        .iter()
        .map(|&(_, sample_every)| {
            QueryService::new(
                Arc::clone(&index),
                ServiceConfig {
                    cache_capacity: 0,
                    trace: TraceConfig { sample_every, ..TraceConfig::default() },
                    ..ServiceConfig::default()
                },
            )
        })
        .collect();
    for service in &services {
        let got = service.query(probe, TAU);
        assert_eq!(
            got.ids().expect("obs: probe query executes"),
            expect.as_slice(),
            "obs: service path diverged from the brute-force scan"
        );
        // Warm-up: fault in the index and settle each worker pool
        // before any clock starts.
        run_stream(service, queries, (total_queries / 10).max(64));
    }

    let per_round = (total_queries / ROUNDS).max(BATCH as u64);
    let mut elapsed = [0f64; POLICIES.len()];
    let mut ran = [0u64; POLICIES.len()];
    for _ in 0..ROUNDS {
        for (p, service) in services.iter().enumerate() {
            let t0 = Instant::now();
            ran[p] += run_stream(service, queries, per_round);
            elapsed[p] += t0.elapsed().as_secs_f64();
        }
    }
    let mut results: Vec<PolicyResult> = Vec::new();
    for (p, &(label, sample_every)) in POLICIES.iter().enumerate() {
        let qps = ran[p] as f64 / elapsed[p];
        let baseline = results.first().map_or(qps, |r| r.qps);
        results.push(PolicyResult {
            label,
            sample_every,
            queries: ran[p],
            qps,
            overhead_pct: (baseline / qps - 1.0) * 100.0,
            slow_ring: services[p].tracer().slow_queries().len(),
        });
    }
    // Sanity on the mechanism itself, independent of timing noise: the
    // always-on run must have captured traces, the disabled run none.
    assert_eq!(results[0].slow_ring, 0, "obs: tracing off must capture nothing");
    assert!(results[2].slow_ring > 0, "obs: always-on tracing must fill the slow ring");
    for service in services {
        service.shutdown();
    }

    let policy_json: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"policy\": \"{}\", \"sample_every\": {}, \"queries\": {}, \
                 \"qps\": {:.1}, \"overhead_pct\": {:.2}}}",
                r.label, r.sample_every, r.queries, r.qps, r.overhead_pct
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"obs\",\n  \"rows\": {},\n  \"dims\": {},\n  \
         \"shards\": {},\n  \"tau\": {},\n  \"batch\": {},\n  \"rounds\": {},\n  \
         \"build_s\": {:.4},\n  \"policies\": [\n{}\n  ]\n}}\n",
        data.len(),
        data.dim(),
        SHARDS,
        TAU,
        BATCH,
        ROUNDS,
        build_s,
        policy_json.join(",\n"),
    );
    let out = std::env::var("BENCH_OBS_OUT").unwrap_or_else(|_| "BENCH_obs.json".into());
    std::fs::write(&out, &json).expect("obs: write report");

    println!("## obs ({} rows, tau {TAU}, tracing overhead)\n", data.len());
    println!("| policy | sample 1-in | queries | QPS | overhead vs off |");
    println!("|---|---|---|---|---|");
    for r in &results {
        println!(
            "| {} | {} | {} | {:.0} | {:+.2}% |",
            r.label, r.sample_every, r.queries, r.qps, r.overhead_pct
        );
    }
    println!("\nreport written to {out}");
}

//! Fig. 2 — cost-model assumption checks.
//!
//! * Fig. 2(a): GPH response time decomposed into threshold allocation,
//!   signature enumeration, candidate generation, and verification. The
//!   paper's claim: allocation + enumeration are negligible (< 3 %).
//! * Fig. 2(b): `Σ|I_s|` (postings touched) upper-bounds `|S_cand|`
//!   (distinct candidates); their ratio α feeds Equation 1.

use crate::util::{gph_config_for, ms, prepare, tau_sweep, GphEngine, Scale, Table};
use datagen::Profile;
use gph::partition_opt::{PartitionStrategy, WorkloadSpec};

fn three_datasets() -> Vec<Profile> {
    vec![Profile::sift_like(), Profile::gist_like(), Profile::pubchem_like()]
}

fn build_gph(profile: &Profile, scale: Scale) -> (GphEngine, hamming_core::Dataset, Vec<u32>) {
    let qs = prepare(profile, scale, 0xF2);
    let taus = tau_sweep(&profile.name);
    let mut cfg = gph_config_for(profile.dim, *taus.last().expect("nonempty") as usize);
    cfg.workload = Some(WorkloadSpec::new(qs.workload.clone(), taus.clone()));
    cfg.strategy = PartitionStrategy::default();
    let engine = GphEngine::build_with(qs.data, cfg);
    (engine, qs.queries, taus)
}

/// Fig. 2(a): per-phase time decomposition.
pub fn run_fig2a(scale: Scale) {
    println!("## Fig. 2(a) — GPH response time decomposed (mean ms/query)\n");
    let mut table = Table::new(&[
        "dataset",
        "tau",
        "alloc",
        "enum",
        "candgen",
        "verify",
        "total",
        "alloc+enum %",
    ]);
    for profile in three_datasets() {
        let (engine, queries, taus) = build_gph(&profile, scale);
        for &tau in &taus {
            let mut acc = [0u64; 4];
            for qi in 0..queries.len() {
                let res = engine.inner().search_with_stats(queries.row(qi), tau);
                acc[0] += res.stats.alloc_ns;
                acc[1] += res.stats.enumerate_ns;
                acc[2] += res.stats.candgen_ns;
                acc[3] += res.stats.verify_ns;
            }
            let nq = queries.len().max(1) as f64;
            let to_ms = |v: u64| v as f64 / 1e6 / nq;
            let total = acc.iter().sum::<u64>() as f64 / 1e6 / nq;
            let overhead =
                if total > 0.0 { (to_ms(acc[0]) + to_ms(acc[1])) / total * 100.0 } else { 0.0 };
            table.row(vec![
                profile.name.clone(),
                tau.to_string(),
                ms(to_ms(acc[0])),
                ms(to_ms(acc[1])),
                ms(to_ms(acc[2])),
                ms(to_ms(acc[3])),
                ms(total),
                format!("{overhead:.1}%"),
            ]);
        }
    }
    table.print();
}

/// Fig. 2(b): `Σ|I_s|` vs `|S_cand|` and the α ratio.
pub fn run_fig2b(scale: Scale) {
    println!("## Fig. 2(b) — sum of postings vs distinct candidates (alpha)\n");
    let mut table = Table::new(&["dataset", "tau", "sum |I_s|", "|S_cand|", "alpha"]);
    for profile in three_datasets() {
        let (engine, queries, taus) = build_gph(&profile, scale);
        for &tau in &taus {
            let mut postings = 0u64;
            let mut cands = 0u64;
            for qi in 0..queries.len() {
                let res = engine.inner().search_with_stats(queries.row(qi), tau);
                postings += res.stats.sum_postings;
                cands += res.stats.n_candidates;
            }
            let alpha = if postings == 0 { 1.0 } else { cands as f64 / postings as f64 };
            table.row(vec![
                profile.name.clone(),
                tau.to_string(),
                postings.to_string(),
                cands.to_string(),
                format!("{alpha:.3}"),
            ]);
        }
    }
    table.print();
    println!(
        "alpha is the |S_cand| / Σ|I_s| ratio of Eq. 1; the paper reports \
         0.69–0.98 depending on dataset and τ.\n"
    );
}

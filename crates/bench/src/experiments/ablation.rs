//! Ablation (beyond the paper): what each §III design choice buys.
//!
//! Compares four allocation regimes on the same GR-partitioned index:
//!
//! * **general** — Algorithm 1 (budget `τ − m + 1`, thresholds ≥ −1);
//! * **flexible** — Lemma 2's budget `τ` (no ε-transformation);
//! * **non-negative** — general budget but no partition skipping
//!   (thresholds ≥ 0; falls back to general where infeasible);
//! * **basic** — MIH-style uniform `⌊τ/m⌋` (via the RR allocator's
//!   closest analogue, round robin).
//!
//! Expected: candidates(general) ≤ candidates(non-negative) ≤
//! candidates(flexible) ≈ candidates(basic); the gap widens with skew.

use crate::util::{count, gph_config_for, ms, prepare, tau_sweep, GphEngine, Scale, Table};
use datagen::Profile;
use gph::partition_opt::{PartitionStrategy, WorkloadSpec};
use gph::AllocatorKind;

/// Runs the allocation ablation on a medium- and a high-skew dataset.
pub fn run(scale: Scale) {
    println!("## Ablation — allocation budget variants (beyond the paper)\n");
    let mut table = Table::new(&[
        "dataset",
        "tau",
        "metric",
        "general",
        "flexible",
        "non-negative",
        "round-robin",
    ]);
    for profile in [Profile::gist_like(), Profile::pubchem_like()] {
        let qs = prepare(&profile, scale, 0xAB);
        let taus = tau_sweep(&profile.name);
        let tau_max = *taus.last().expect("nonempty") as usize;
        let kinds = [
            AllocatorKind::Dp,
            AllocatorKind::DpFlexible,
            AllocatorKind::DpNonNegative,
            AllocatorKind::RoundRobin,
        ];
        let engines: Vec<GphEngine> = kinds
            .iter()
            .map(|&alloc| {
                let mut cfg = gph_config_for(profile.dim, tau_max);
                cfg.allocator = alloc;
                cfg.strategy = PartitionStrategy::default();
                cfg.workload = Some(WorkloadSpec::new(qs.workload.clone(), taus.clone()));
                GphEngine::build_with(qs.data.clone(), cfg)
            })
            .collect();
        for &tau in &taus {
            let timings: Vec<_> =
                engines.iter().map(|e| crate::util::time_queries(e, &qs.queries, tau)).collect();
            let mut cand = vec![profile.name.clone(), tau.to_string(), "cands".into()];
            let mut time = vec![profile.name.clone(), tau.to_string(), "ms".into()];
            for t in &timings {
                cand.push(count(t.mean_candidates));
                time.push(ms(t.mean_ms));
            }
            table.row(cand);
            table.row(time);
        }
    }
    table.print();
    println!(
        "general = Algorithm 1; flexible = Lemma 2 budget (no ε-transform); \
         non-negative = no partition skipping; round-robin = uniform spread.\n"
    );
}

//! Fig. 1 — skewness by dimension for every dataset profile.
//!
//! The paper plots per-dimension skewness (`|#1s − #0s| / #data`) of the
//! real datasets to motivate skew-aware partitioning; here we verify the
//! synthetic stand-ins reproduce those profiles: SIFT-like near zero,
//! GIST-like ramping to ≈ 0.6, PubChem/FastText-like heavily skewed.

use crate::util::{prepare, Scale, Table};
use datagen::Profile;
use hamming_core::stats::DimStats;

/// Prints the skewness profile summary for the five stand-ins plus a
/// γ = 0.25 synthetic.
pub fn run(scale: Scale) {
    println!("## Fig. 1 — skewness by dimension (synthetic stand-ins)\n");
    let mut profiles = Profile::paper_suite();
    profiles.push(Profile::synthetic_gamma(0.25));
    let mut table =
        Table::new(&["dataset", "dims", "mean skew", "p10", "median", "p90", "max", "dims>0.3"]);
    for profile in &profiles {
        let qs = prepare(profile, scale, 0xF1);
        let stats = DimStats::compute(&qs.data);
        let mut skews = stats.skewness_profile();
        skews.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let d = skews.len();
        let pick = |q: f64| skews[((d - 1) as f64 * q) as usize];
        let above = skews.iter().filter(|&&s| s > 0.3).count();
        table.row(vec![
            profile.name.clone(),
            d.to_string(),
            format!("{:.3}", stats.mean_skewness()),
            format!("{:.3}", pick(0.1)),
            format!("{:.3}", pick(0.5)),
            format!("{:.3}", pick(0.9)),
            format!("{:.3}", skews[d - 1]),
            above.to_string(),
        ]);
    }
    table.print();

    // Decile series per dataset — the "shape" of the Fig. 1 curves.
    let mut series = Table::new(&[
        "dataset", "d0%", "d12%", "d25%", "d38%", "d50%", "d62%", "d75%", "d88%", "d100%",
    ]);
    for profile in &profiles {
        let qs = prepare(profile, scale, 0xF1);
        let stats = DimStats::compute(&qs.data);
        let d = profile.dim;
        let mut cells = vec![profile.name.clone()];
        for k in 0..9 {
            let idx = ((d - 1) * k) / 8;
            cells.push(format!("{:.2}", stats.skewness(idx)));
        }
        series.row(cells);
    }
    println!("Per-dimension skewness sampled along the dimension axis:");
    series.print();
}

//! CI smoke benchmark: one end-to-end pass over a tiny synthetic
//! workload — build, snapshot, restore, then serve a query stream — with
//! the headline numbers written to `BENCH_smoke.json`.
//!
//! This is the perf-trajectory anchor: CI runs it at `--scale tiny` on
//! every push and uploads the JSON as an artifact, so regressions in
//! build time, restore time, QPS, tail latency, or candidate counts
//! show up as a broken series, not an anecdote. The numbers are
//! machine-dependent; the *trajectory* across commits on the same
//! runner class is the signal.

use crate::util::prepare;
use crate::Scale;
use datagen::Profile;
use gph::engine::GphConfig;
use gph_serve::{QueryService, ServiceConfig, ShardedIndex};
use std::sync::Arc;
use std::time::Instant;

/// Number of shards the smoke fleet runs.
const SHARDS: usize = 2;
/// Threshold the query stream uses (= the fleet's tau_max, so the
/// candidate counts exercise the allocator rather than rounding to 0).
const TAU: u32 = 16;

/// Runs the smoke pass and writes the JSON report. The output path comes
/// from `BENCH_SMOKE_OUT` (default `BENCH_smoke.json`); any failure to
/// build, snapshot, restore, or serve panics, which is exactly what the
/// CI job wants to fail on.
pub fn run(scale: Scale) {
    let profile = Profile::synthetic_gamma(0.25);
    let qs = prepare(&profile, scale, 0x5304E);
    run_inner(&qs.data, &qs.queries);
}

fn run_inner(data: &hamming_core::Dataset, queries: &hamming_core::Dataset) {
    let cfg = GphConfig::new(GphConfig::suggested_m(data.dim()), 16);

    // Build the sharded fleet (the expensive offline phase).
    let t_build = Instant::now();
    let built = ShardedIndex::build(data, SHARDS, &cfg).expect("smoke: build");
    let build_s = t_build.elapsed().as_secs_f64();

    // Snapshot + restore: the warm-start path must stay cheap relative
    // to the build, and the restored fleet must agree with the built one.
    let dir = std::env::temp_dir().join(format!("gph_bench_smoke_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let t_snap = Instant::now();
    built.snapshot(&dir).expect("smoke: snapshot");
    let snapshot_s = t_snap.elapsed().as_secs_f64();
    let t_restore = Instant::now();
    let restored = ShardedIndex::restore(&dir).expect("smoke: restore");
    let restore_s = t_restore.elapsed().as_secs_f64();
    std::fs::remove_dir_all(&dir).ok();
    let probe = queries.row(0);
    assert_eq!(
        restored.search(probe, TAU),
        built.search(probe, TAU),
        "smoke: restored fleet diverged from the built one"
    );

    // Serve the query stream through the full service path, in small
    // batches: one giant batch would be a single job executed serially
    // by one worker, making QPS and the latency quantiles degenerate.
    const BATCH: usize = 4;
    let service = QueryService::new(Arc::new(restored), ServiceConfig::default());
    let t_serve = Instant::now();
    let tickets: Vec<_> = (0..queries.len())
        .step_by(BATCH)
        .map(|start| {
            let chunk: Vec<&[u64]> =
                (start..(start + BATCH).min(queries.len())).map(|i| queries.row(i)).collect();
            service.submit_batch(&chunk, TAU)
        })
        .collect();
    let results: usize =
        tickets.into_iter().flat_map(|t| t.wait()).map(|r| r.ids().map_or(0, <[u32]>::len)).sum();
    let serve_s = t_serve.elapsed().as_secs_f64();
    let stats = service.stats();
    let qps = queries.len() as f64 / serve_s.max(1e-9);
    let p95_ms = stats.latency_p95_ns as f64 / 1e6;

    let json = format!(
        "{{\n  \"experiment\": \"smoke\",\n  \"rows\": {},\n  \"dims\": {},\n  \
         \"queries\": {},\n  \"shards\": {},\n  \"tau\": {},\n  \
         \"build_s\": {:.4},\n  \"snapshot_s\": {:.4},\n  \"restore_s\": {:.4},\n  \
         \"qps\": {:.1},\n  \"p50_ms\": {:.4},\n  \"p95_ms\": {:.4},\n  \
         \"candidates_per_query\": {:.2},\n  \"results\": {}\n}}\n",
        data.len(),
        data.dim(),
        queries.len(),
        SHARDS,
        TAU,
        build_s,
        snapshot_s,
        restore_s,
        qps,
        stats.latency_p50_ns as f64 / 1e6,
        p95_ms,
        stats.candidates_per_query,
        results,
    );
    let out = std::env::var("BENCH_SMOKE_OUT").unwrap_or_else(|_| "BENCH_smoke.json".into());
    std::fs::write(&out, &json).expect("smoke: write report");

    println!("## smoke ({} rows, {} queries)\n", data.len(), queries.len());
    println!("| metric | value |");
    println!("|---|---|");
    println!("| build | {build_s:.2} s |");
    println!("| snapshot | {snapshot_s:.2} s |");
    println!("| restore | {restore_s:.2} s |");
    println!("| QPS | {qps:.0} |");
    println!("| p95 latency | {p95_ms:.2} ms |");
    println!("| candidates/query | {:.1} |", stats.candidates_per_query);
    println!("\nreport written to {out}");
}

//! Scale check (beyond the paper): where the candidate savings overtake
//! the allocation overhead.
//!
//! At the paper's scale (10⁶–10⁹ rows) candidate generation and
//! verification dominate query time, so GPH's smaller candidate sets
//! translate directly into wall-clock wins. At laptop scale the fixed
//! per-query cost of CN estimation + DP can exceed the savings. This
//! experiment sweeps the dataset cardinality and reports the GPH/MIH
//! time ratio alongside their candidate counts: candidates grow linearly
//! with N while the allocation overhead stays flat, so the ratio trends
//! toward the paper's regime as N grows.

use crate::util::{count, gph_config_for, ms, prepare, time_queries, GphEngine, Scale, Table};
use baselines::Mih;
use datagen::Profile;
use gph::partition_opt::{PartitionStrategy, WorkloadSpec};

/// Runs the N sweep on gist-like at a large τ (candidate-heavy regime).
pub fn run(scale: Scale) {
    println!("## Scale check — GPH vs MIH as N grows (gist-like, tau = 48)\n");
    let profile = Profile::gist_like();
    let tau = 48u32;
    let mut table = Table::new(&[
        "N",
        "GPH cands",
        "MIH cands",
        "GPH ms",
        "MIH ms",
        "GPH/MIH time",
        "cand ratio",
    ]);
    for n in [5_000usize, 10_000, 20_000, 40_000] {
        let sub_scale = Scale { base_rows: n, ..scale };
        let qs = prepare(&profile, sub_scale, 0x5C);
        let mut cfg = gph_config_for(profile.dim, tau as usize);
        cfg.strategy = PartitionStrategy::default();
        cfg.workload = Some(WorkloadSpec::new(qs.workload.clone(), vec![16, 32, tau]));
        let gph_engine = GphEngine::build_with(qs.data.clone(), cfg);
        let mih = Mih::build(qs.data.clone(), Mih::suggested_m(profile.dim, n)).expect("mih");
        let tg = time_queries(&gph_engine, &qs.queries, tau);
        let tm = time_queries(&mih, &qs.queries, tau);
        table.row(vec![
            n.to_string(),
            count(tg.mean_candidates),
            count(tm.mean_candidates),
            ms(tg.mean_ms),
            ms(tm.mean_ms),
            format!("{:.2}", tg.mean_ms / tm.mean_ms.max(1e-9)),
            format!("{:.1}x", tm.mean_candidates / tg.mean_candidates.max(1.0)),
        ]);
    }
    table.print();
    println!(
        "GPH's fixed per-query overhead (CN fill + DP) is N-independent \
         while candidate work grows with N; the time ratio should fall \
         toward the paper's regime as N grows.\n"
    );
}

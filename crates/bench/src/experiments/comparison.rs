//! Fig. 7 — the headline comparison: candidates and query time for GPH
//! vs MIH, HmSearch, PartAlloc, and LSH on all five datasets.
//!
//! Expected shapes (paper): GPH smallest candidate sets and fastest
//! everywhere (up to 22×/21×/135×/32×/8× over the runner-up on
//! SIFT/GIST/PubChem/FastText/UQVideo); PartAlloc trails MIH despite its
//! tight filter; LSH collapses on highly skewed data; on FastText at
//! large τ most of the dataset matches, so filtering saturates for
//! everyone.

use crate::util::{
    count, gph_config_for, measure_recall, mih_best_m, ms, prepare, tau_sweep, time_queries,
    GphEngine, Scale, Table,
};
use baselines::{HmSearch, Mih, MinHashLsh, PartAlloc, SearchIndex};
use datagen::Profile;
use gph::partition_opt::{PartitionStrategy, WorkloadSpec};

/// Runs the full comparison.
pub fn run(scale: Scale) {
    println!("## Fig. 7 — candidates & query time vs alternatives\n");
    let mut table =
        Table::new(&["dataset", "tau", "metric", "GPH", "MIH", "HmSearch", "PartAlloc", "LSH"]);
    let mut recall_table = Table::new(&["dataset", "tau", "LSH recall"]);
    for profile in Profile::paper_suite() {
        let qs = prepare(&profile, scale, 0xF7);
        let taus = tau_sweep(&profile.name);
        let tau_max = *taus.last().expect("nonempty") as usize;

        let mut cfg = gph_config_for(profile.dim, tau_max);
        cfg.strategy = PartitionStrategy::default();
        cfg.workload = Some(WorkloadSpec::new(qs.workload.clone(), taus.clone()));
        let gph_engine = GphEngine::build_with(qs.data.clone(), cfg);

        let base_m = Mih::suggested_m(profile.dim, qs.data.len());
        let m = mih_best_m(
            &qs.data,
            &qs.queries,
            taus[taus.len() / 2],
            &[base_m.saturating_sub(base_m / 2).max(1), base_m, base_m * 2],
        );
        let mih = Mih::build(qs.data.clone(), m).expect("mih");

        for &tau in &taus {
            let hm = HmSearch::build(qs.data.clone(), tau).expect("hm");
            let pa = PartAlloc::build(qs.data.clone(), tau).expect("pa");
            let lsh = MinHashLsh::build(qs.data.clone(), tau).expect("lsh");
            let engines: [&dyn SearchIndex; 5] = [&gph_engine, &mih, &hm, &pa, &lsh];
            let timings: Vec<_> =
                engines.iter().map(|e| time_queries(*e, &qs.queries, tau)).collect();
            let mut cand_cells = vec![profile.name.clone(), tau.to_string(), "cands".into()];
            let mut time_cells = vec![profile.name.clone(), tau.to_string(), "ms".into()];
            for t in &timings {
                cand_cells.push(count(t.mean_candidates));
                time_cells.push(ms(t.mean_ms));
            }
            table.row(cand_cells);
            table.row(time_cells);
            recall_table.row(vec![
                profile.name.clone(),
                tau.to_string(),
                format!("{:.3}", measure_recall(&lsh, &qs.data, &qs.queries, tau)),
            ]);
        }
    }
    table.print();
    println!("LSH is approximate; its recall against the exact result set:");
    recall_table.print();
}

//! Table III — CN estimation quality: SP vs SVM vs RF vs DNN.
//!
//! On the GIST-like dataset with equi-width partitions, each estimator
//! predicts `CN(qᵢ, e)` at the basic per-partition threshold `e = ⌊τ/m⌋`
//! for τ ∈ {16, 32, 48, 64}; errors are relative to the exact count
//! (full sample scan) and prediction time is per estimate. Expected
//! shape (paper): SVM ≈ DNN ≪ RF in error, SVM fastest among the
//! learned models, all errors shrinking as τ grows.

use crate::util::{prepare, Scale, Table};
use datagen::Profile;
use gph::cn::learned::{LearnedParams, ModelKind};
use gph::cn::{build_estimator, CnEstimator, EstimatorKind};
use hamming_core::project::{ProjectedDataset, Projector};
use hamming_core::Partitioning;
use std::time::Instant;

/// Runs the estimator comparison.
pub fn run(scale: Scale) {
    println!("## Table III — CN estimation error and prediction time (GIST-like)\n");
    let profile = Profile::gist_like();
    let qs = prepare(&profile, scale, 0xE3);
    let m = 16usize; // 256 dims -> width-16 partitions
    let p = Partitioning::equi_width(profile.dim, m).expect("valid m");
    let projector = Projector::new(&p);
    let pd = ProjectedDataset::build(&qs.data, &projector);
    let tau_max = 64usize;

    // Estimators under test (SP + the three learned families).
    let n_train = scale.n_workload.max(100);
    let kinds: Vec<(&str, EstimatorKind)> = vec![
        ("SP", EstimatorKind::SubPartition { sub_count: 2, paper_shift: false }),
        ("SP-paper", EstimatorKind::SubPartition { sub_count: 2, paper_shift: true }),
        (
            "SVM",
            EstimatorKind::Learned(LearnedParams {
                model: ModelKind::Svm,
                n_train,
                ..Default::default()
            }),
        ),
        (
            "RF",
            EstimatorKind::Learned(LearnedParams {
                model: ModelKind::Rf,
                n_train,
                ..Default::default()
            }),
        ),
        (
            "DNN",
            EstimatorKind::Learned(LearnedParams {
                model: ModelKind::Dnn,
                n_train,
                ..Default::default()
            }),
        ),
    ];
    let mut built: Vec<(&str, Box<dyn CnEstimator>)> = Vec::new();
    for (name, kind) in &kinds {
        let t = Instant::now();
        let est = build_estimator(kind, &pd, tau_max).expect("estimator build");
        println!("built {name} in {:.2}s", t.elapsed().as_secs_f64());
        built.push((name, est));
    }
    // Oracle.
    let oracle = build_estimator(
        &EstimatorKind::SampleScan { sample_cap: usize::MAX, seed: 0 },
        &pd,
        tau_max,
    )
    .expect("oracle build");

    println!();
    let mut table = Table::new(&["tau", "e=⌊τ/m⌋", "SP", "SP-paper", "SVM", "RF", "DNN"]);
    let eval_queries = qs.queries.len().min(30);
    for tau in [16u32, 32, 48, 64] {
        let e = (tau as usize / m).min(tau_max);
        let mut cells = vec![tau.to_string(), e.to_string()];
        for (_, est) in &built {
            let mut err_sum = 0.0f64;
            let mut err_n = 0usize;
            let mut pred_ns = 0u128;
            for qi in 0..eval_queries {
                let q = qs.queries.row(qi);
                for part in 0..m {
                    let qp = projector.project(part, q);
                    let mut est_row = vec![0.0; tau_max + 2];
                    let mut tru_row = vec![0.0; tau_max + 2];
                    let t = Instant::now();
                    est.fill(part, &qp, tau_max, &mut est_row);
                    pred_ns += t.elapsed().as_nanos();
                    oracle.fill(part, &qp, tau_max, &mut tru_row);
                    let (p_est, p_tru) = (est_row[e + 1], tru_row[e + 1]);
                    err_sum += (p_est - p_tru).abs() / p_tru.max(1.0);
                    err_n += 1;
                }
            }
            // fill() produces the whole row (tau_max + 1 estimates); the
            // per-estimate time divides accordingly.
            let per_estimate_us = pred_ns as f64 / 1e3 / (err_n as f64) / (tau_max as f64 + 1.0);
            cells.push(format!("{:.2}%/{:.2}", err_sum / err_n as f64 * 100.0, per_estimate_us));
        }
        table.row(cells);
    }
    println!("Each cell: mean relative error % / prediction time per estimate (µs).\n");
    table.print();
}

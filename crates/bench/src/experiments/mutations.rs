//! Mixed read/write benchmark: a query stream interleaved with
//! inserts/deletes/upserts through the full service path, with the
//! headline numbers written to `BENCH_mutations.json`.
//!
//! Companion to the `smoke` experiment: where smoke pins the frozen
//! build→snapshot→restore→serve pipeline, this pins the live-update
//! path — memtable appends, tombstone deletes, segment seals and
//! compactions, and whole-cache invalidation — under a 80/10/10
//! search/insert/delete mix. The run also cross-checks one final query
//! against a brute-force scan over the surviving rows, so a correctness
//! regression in the segmented merge fails the job rather than skewing
//! a number.

use crate::util::prepare;
use crate::Scale;
use datagen::Profile;
use gph::engine::GphConfig;
use gph::segment::SegmentConfig;
use gph_serve::{MutationOutcome, QueryService, ServiceConfig, ShardedIndex};
use hamming_core::Dataset;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Number of shards the fleet runs.
const SHARDS: usize = 2;
/// Threshold the query stream uses.
const TAU: u32 = 16;
/// Seal threshold: small enough that even the tiny (CI) scale — ~150
/// inserts spread over the shards — triggers several seals, so the
/// perf trajectory covers the build-on-seal path, not just memtable
/// appends. The run asserts this invariant below.
const SEAL_ROWS: usize = 32;
/// Compaction fan-out: the bulk-built segment plus two seals exceeds
/// this, so at least one merge runs too.
const MAX_SEALED: usize = 2;

/// Runs the mixed read/write pass and writes the JSON report. The output
/// path comes from `BENCH_MUTATIONS_OUT` (default `BENCH_mutations.json`);
/// any failure panics, which is what the CI job wants to fail on.
pub fn run(scale: Scale) {
    let profile = Profile::synthetic_gamma(0.25);
    let qs = prepare(&profile, scale, 0x307A7E);
    run_inner(&qs.data, &qs.queries, scale);
}

fn run_inner(data: &Dataset, queries: &Dataset, scale: Scale) {
    let cfg = GphConfig::new(GphConfig::suggested_m(data.dim()), TAU as usize);
    let seg_cfg =
        SegmentConfig { seal_rows: SEAL_ROWS, max_sealed: MAX_SEALED, ..SegmentConfig::default() };

    let t_build = Instant::now();
    let index = Arc::new(
        ShardedIndex::build_with_segments(data, SHARDS, &cfg, seg_cfg).expect("mutations: build"),
    );
    let build_s = t_build.elapsed().as_secs_f64();
    let service = QueryService::new(Arc::clone(&index), ServiceConfig::default());

    // Mixed op stream: 80 % searches over the query set, 10 % inserts of
    // fresh rows (ids above the initial range), 10 % deletes of live ids.
    // A model map tracks the expected survivors for the final check.
    let n_ops = (scale.base_rows / 2).max(500);
    let mut rng = ChaCha8Rng::seed_from_u64(0xBEEF);
    let fresh = Profile::synthetic_gamma(0.25).generate(n_ops / 8 + 8, 0xF00D);
    let mut model: BTreeMap<u32, Vec<u64>> =
        (0..data.len()).map(|i| (i as u32, data.row(i).to_vec())).collect();
    let mut next_id = data.len() as u32 + 1_000_000;
    let mut fresh_at = 0usize;
    let (mut searches, mut inserts, mut deletes, mut results) = (0u64, 0u64, 0u64, 0u64);

    let t_ops = Instant::now();
    for _ in 0..n_ops {
        match rng.random_range(0..10u32) {
            0 => {
                let row = fresh.row(fresh_at % fresh.len()).to_vec();
                fresh_at += 1;
                let resp = service.insert(next_id, &row).expect("mutations: insert");
                assert!(
                    matches!(resp.outcome, MutationOutcome::Applied { .. }),
                    "insert rejected under an unlimited budget"
                );
                model.insert(next_id, row);
                next_id += 1;
                inserts += 1;
            }
            1 => {
                // Delete a pseudo-random live id: the first live id at or
                // above a random probe, wrapping to the smallest.
                let probe = rng.random_range(0..next_id);
                let victim =
                    model.range(probe..).next().or_else(|| model.iter().next()).map(|(&id, _)| id);
                if let Some(victim) = victim {
                    let resp = service.delete(victim);
                    assert!(matches!(resp.outcome, MutationOutcome::Applied { .. }));
                    model.remove(&victim);
                    deletes += 1;
                }
            }
            _ => {
                let q = queries.row((searches as usize) % queries.len());
                let resp = service.query(q, TAU);
                results += resp.ids().map_or(0, <[u32]>::len) as u64;
                searches += 1;
            }
        }
    }
    let ops_s = t_ops.elapsed().as_secs_f64();

    // The benchmark must cover the seal path at every scale: by the
    // pigeonhole principle, `inserts` spread over SHARDS shards gives
    // some shard at least inserts/SHARDS memtable appends, which must
    // exceed the seal threshold (deletes can thin a memtable but only
    // the ids that actually landed there).
    assert!(
        inserts as usize / SHARDS >= 2 * SEAL_ROWS,
        "op mix too small to exercise seals: {inserts} inserts over {SHARDS} shards \
         at seal_rows={SEAL_ROWS}"
    );

    // Correctness cross-check: one query against a brute-force scan over
    // the model's surviving rows.
    let probe = queries.row(0);
    let got = index.search(probe, TAU);
    let expect: Vec<u32> = model
        .iter()
        .filter(|(_, row)| hamming_core::distance::hamming_within(row, probe, TAU).is_some())
        .map(|(&id, _)| id)
        .collect();
    assert_eq!(got, expect, "mutations: fleet diverged from the surviving-row scan");

    let stats = service.stats();
    let cache = service.cache_stats();
    let segs: usize = index.segment_counts().iter().sum();
    let ops_per_s = n_ops as f64 / ops_s.max(1e-9);

    let json = format!(
        "{{\n  \"experiment\": \"mutations\",\n  \"rows_initial\": {},\n  \"dims\": {},\n  \
         \"shards\": {},\n  \"tau\": {},\n  \"seal_rows\": {},\n  \"ops\": {},\n  \
         \"searches\": {},\n  \"inserts\": {},\n  \"deletes\": {},\n  \
         \"rows_final\": {},\n  \"build_s\": {:.4},\n  \"ops_per_s\": {:.1},\n  \
         \"p50_ms\": {:.4},\n  \"p95_ms\": {:.4},\n  \"cache_invalidations\": {},\n  \
         \"sealed_segments\": {},\n  \"results\": {}\n}}\n",
        data.len(),
        data.dim(),
        SHARDS,
        TAU,
        SEAL_ROWS,
        n_ops,
        searches,
        inserts,
        deletes,
        index.len(),
        build_s,
        ops_per_s,
        stats.latency_p50_ns as f64 / 1e6,
        stats.latency_p95_ns as f64 / 1e6,
        cache.invalidations,
        segs,
        results,
    );
    let out =
        std::env::var("BENCH_MUTATIONS_OUT").unwrap_or_else(|_| "BENCH_mutations.json".into());
    std::fs::write(&out, &json).expect("mutations: write report");

    println!("## mutations ({} initial rows, {} ops)\n", data.len(), n_ops);
    println!("| metric | value |");
    println!("|---|---|");
    println!("| build | {build_s:.2} s |");
    println!("| ops/s (mixed 80/10/10) | {ops_per_s:.0} |");
    println!("| searches / inserts / deletes | {searches} / {inserts} / {deletes} |");
    println!("| p95 latency | {:.2} ms |", stats.latency_p95_ns as f64 / 1e6);
    println!("| cache invalidations | {} |", cache.invalidations);
    println!("| sealed segments (end) | {segs} |");
    println!("\nreport written to {out}");
}

//! Loopback network load benchmark: C client threads, each pipelining
//! `DEPTH` requests over its own `GPHN` connection against a
//! [`NetServer`], swept over at least two concurrency levels. Headline
//! numbers (QPS, client-side p50/p95/p99, bytes per query) are written
//! to `BENCH_net.json`.
//!
//! Companion to `smoke` (frozen pipeline) and `mutations` (live-update
//! path): this pins the network path — framing, per-connection
//! read/write decoupling, pipelining, and the scatter-gather behind it.
//! One query per run is cross-checked against a brute-force scan so a
//! correctness regression fails the job rather than skewing a number.

use crate::util::prepare;
use crate::Scale;
use datagen::Profile;
use gph::engine::GphConfig;
use gph_net::{GphClient, NetServer, ServerConfig};
use gph_serve::{QueryService, ServiceConfig, ShardedIndex};
use hamming_core::Dataset;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// Shards behind the server.
const SHARDS: usize = 2;
/// Threshold the query stream uses.
const TAU: u32 = 16;
/// Requests in flight per connection.
const DEPTH: usize = 8;
/// Client-thread counts swept (the acceptance floor is two levels).
const LEVELS: [usize; 2] = [2, 4];

/// Runs the sweep and writes the JSON report to `BENCH_NET_OUT`
/// (default `BENCH_net.json`); any failure panics, which is what the CI
/// job wants to fail on.
pub fn run(scale: Scale) {
    let profile = Profile::synthetic_gamma(0.25);
    let qs = prepare(&profile, scale, 0x6E7A11);
    run_inner(&qs.data, &qs.queries, scale);
}

struct LevelResult {
    clients: usize,
    queries: u64,
    qps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    bytes_per_query: f64,
}

fn run_inner(data: &Dataset, queries: &Dataset, scale: Scale) {
    let cfg = GphConfig::new(GphConfig::suggested_m(data.dim()), TAU as usize);
    let t_build = Instant::now();
    let index = Arc::new(ShardedIndex::build(data, SHARDS, &cfg).expect("netload: build"));
    let build_s = t_build.elapsed().as_secs_f64();
    // Caching off: a benchmark over a small repeated query set would
    // otherwise measure the LRU, not the network + engine path.
    let service = Arc::new(QueryService::new(
        Arc::clone(&index),
        ServiceConfig { cache_capacity: 0, ..ServiceConfig::default() },
    ));
    let server = NetServer::bind("127.0.0.1:0", Arc::clone(&service), ServerConfig::default())
        .expect("netload: bind loopback");
    let addr = server.local_addr();

    // Correctness gate before the clock starts: one networked query must
    // equal a brute-force scan.
    let probe = queries.row(0);
    let client = GphClient::connect(addr).expect("netload: connect");
    let got = client.search(probe, TAU).expect("netload: probe query").ids;
    let expect: Vec<u32> = (0..data.len())
        .filter(|&i| hamming_core::distance::hamming_within(data.row(i), probe, TAU).is_some())
        .map(|i| i as u32)
        .collect();
    assert_eq!(got, expect, "netload: network path diverged from the brute-force scan");
    drop(client);

    let total_queries = (scale.base_rows / 2).max(1_000) as u64;
    let mut levels = Vec::new();
    for &clients in &LEVELS {
        let before = server.stats();
        let per_thread = total_queries / clients as u64;
        let t0 = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let queries = queries.clone();
                std::thread::spawn(move || {
                    let client = GphClient::connect(addr).expect("netload: connect");
                    let mut latencies = Vec::with_capacity(per_thread as usize);
                    let mut inflight = VecDeque::new();
                    for i in 0..per_thread {
                        let qi = ((c as u64 * 131 + i) % queries.len() as u64) as usize;
                        let ticket =
                            client.submit_search(queries.row(qi), TAU).expect("netload: submit");
                        inflight.push_back((Instant::now(), ticket));
                        if inflight.len() >= DEPTH {
                            let (t_submit, ticket) = inflight.pop_front().unwrap();
                            ticket.wait().expect("netload: response");
                            latencies.push(t_submit.elapsed().as_nanos() as u64);
                        }
                    }
                    for (t_submit, ticket) in inflight {
                        ticket.wait().expect("netload: response");
                        latencies.push(t_submit.elapsed().as_nanos() as u64);
                    }
                    latencies
                })
            })
            .collect();
        let mut latencies: Vec<u64> = Vec::new();
        for h in handles {
            latencies.extend(h.join().expect("netload: client thread"));
        }
        let elapsed = t0.elapsed().as_secs_f64();
        let after = server.stats();
        latencies.sort_unstable();
        let ran = latencies.len() as u64;
        let pct = |q: f64| latencies[((q * ran as f64) as usize).min(latencies.len() - 1)];
        let wire_bytes = (after.bytes_in - before.bytes_in) + (after.bytes_out - before.bytes_out);
        levels.push(LevelResult {
            clients,
            queries: ran,
            qps: ran as f64 / elapsed,
            p50_ms: pct(0.50) as f64 / 1e6,
            p95_ms: pct(0.95) as f64 / 1e6,
            p99_ms: pct(0.99) as f64 / 1e6,
            bytes_per_query: wire_bytes as f64 / ran as f64,
        });
    }
    let server_stats = server.shutdown();
    assert_eq!(server_stats.protocol_errors, 0, "netload: malformed traffic");

    let level_json: Vec<String> = levels
        .iter()
        .map(|l| {
            format!(
                "    {{\"clients\": {}, \"queries\": {}, \"qps\": {:.1}, \"p50_ms\": {:.4}, \
                 \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \"bytes_per_query\": {:.1}}}",
                l.clients, l.queries, l.qps, l.p50_ms, l.p95_ms, l.p99_ms, l.bytes_per_query
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"netload\",\n  \"rows\": {},\n  \"dims\": {},\n  \
         \"shards\": {},\n  \"tau\": {},\n  \"pipeline_depth\": {},\n  \"build_s\": {:.4},\n  \
         \"levels\": [\n{}\n  ]\n}}\n",
        data.len(),
        data.dim(),
        SHARDS,
        TAU,
        DEPTH,
        build_s,
        level_json.join(",\n"),
    );
    let out = std::env::var("BENCH_NET_OUT").unwrap_or_else(|_| "BENCH_net.json".into());
    std::fs::write(&out, &json).expect("netload: write report");

    println!("## netload ({} rows, depth {DEPTH}, loopback)\n", data.len());
    println!("| clients | queries | QPS | p50 (ms) | p95 (ms) | p99 (ms) | bytes/query |");
    println!("|---|---|---|---|---|---|---|");
    for l in &levels {
        println!(
            "| {} | {} | {:.0} | {:.3} | {:.3} | {:.3} | {:.0} |",
            l.clients, l.queries, l.qps, l.p50_ms, l.p95_ms, l.p99_ms, l.bytes_per_query
        );
    }
    println!("\nreport written to {out}");
}

//! Fig. 6 (index sizes) and Table IV (index construction times).
//!
//! Expected shapes (paper): GPH and MIH are the smallest (query-side
//! enumeration only; GPH slightly larger than MIH because the CN
//! estimator is charged to it); HmSearch/PartAlloc are far larger
//! (data-side 1-deletion variants); LSH varies with τ through `l`.
//! Table IV: MIH builds fastest; GPH's partitioning dominates its build
//! but is τ-independent (computed once for all thresholds).

use crate::util::{gph_config_for, prepare, tau_sweep, GphEngine, Scale, Table};
use baselines::{HmSearch, Mih, MinHashLsh, PartAlloc, SearchIndex};
use datagen::Profile;
use gph::partition_opt::{PartitionStrategy, WorkloadSpec};
use std::time::Instant;

fn mb(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / 1e6)
}

/// Fig. 6: index sizes for every algorithm on all five datasets.
pub fn run_fig6(scale: Scale) {
    println!("## Fig. 6 — index sizes (MB)\n");
    let mut table = Table::new(&["dataset", "tau", "GPH", "MIH", "HmSearch", "PartAlloc", "LSH"]);
    for profile in Profile::paper_suite() {
        let qs = prepare(&profile, scale, 0xF6);
        let taus = tau_sweep(&profile.name);
        let tau_max = *taus.last().expect("nonempty") as usize;
        // τ-independent builds once:
        let mut cfg = gph_config_for(profile.dim, tau_max);
        cfg.strategy = PartitionStrategy::default();
        cfg.workload = Some(WorkloadSpec::new(qs.workload.clone(), taus.clone()));
        let gph_engine = GphEngine::build_with(qs.data.clone(), cfg);
        let mih = Mih::build(qs.data.clone(), Mih::suggested_m(profile.dim, qs.data.len()))
            .expect("mih build");
        for &tau in &taus {
            let hm = HmSearch::build(qs.data.clone(), tau).expect("hmsearch build");
            let pa = PartAlloc::build(qs.data.clone(), tau).expect("partalloc build");
            let lsh = MinHashLsh::build(qs.data.clone(), tau).expect("lsh build");
            table.row(vec![
                profile.name.clone(),
                tau.to_string(),
                mb(gph_engine.size_bytes()),
                mb(mih.size_bytes()),
                mb(hm.size_bytes()),
                mb(pa.size_bytes()),
                mb(lsh.size_bytes()),
            ]);
        }
    }
    table.print();
    println!(
        "GPH and MIH indexes are τ-independent (built once per dataset); \
         HmSearch/PartAlloc/LSH sizes vary with τ by construction.\n"
    );
}

/// Table IV: index construction times on the GIST-like dataset.
pub fn run_table4(scale: Scale) {
    println!("## Table IV — index construction time on GIST-like (seconds)\n");
    let profile = Profile::gist_like();
    let qs = prepare(&profile, scale, 0xF6);
    let taus = [16u32, 32, 48, 64];
    let mut table =
        Table::new(&["tau", "MIH", "HmSearch", "PartAlloc", "LSH", "GPH (part + index)"]);
    // GPH: partitioning once (workload spans all τ), indexing once.
    let mut cfg = gph_config_for(profile.dim, 64);
    cfg.strategy = PartitionStrategy::default();
    cfg.workload = Some(WorkloadSpec::new(qs.workload.clone(), taus.to_vec()));
    let t = Instant::now();
    let gph_engine = GphEngine::build_with(qs.data.clone(), cfg);
    let _ = t.elapsed();
    let bs = gph_engine.inner().build_stats();
    let gph_cell = format!(
        "{:.1} + {:.1}",
        bs.partition_ms as f64 / 1e3,
        (bs.index_ms + bs.estimator_ms) as f64 / 1e3
    );
    for tau in taus {
        let time_of = |f: &dyn Fn() -> usize| {
            let t = Instant::now();
            let sz = f();
            (t.elapsed().as_secs_f64(), sz)
        };
        let (mih_s, _) = time_of(&|| {
            Mih::build(qs.data.clone(), Mih::suggested_m(profile.dim, qs.data.len()))
                .expect("mih")
                .size_bytes()
        });
        let (hm_s, _) =
            time_of(&|| HmSearch::build(qs.data.clone(), tau).expect("hm").size_bytes());
        let (pa_s, _) =
            time_of(&|| PartAlloc::build(qs.data.clone(), tau).expect("pa").size_bytes());
        let (lsh_s, _) =
            time_of(&|| MinHashLsh::build(qs.data.clone(), tau).expect("lsh").size_bytes());
        table.row(vec![
            tau.to_string(),
            format!("{mih_s:.1}"),
            format!("{hm_s:.1}"),
            format!("{pa_s:.1}"),
            format!("{lsh_s:.1}"),
            gph_cell.clone(),
        ]);
    }
    table.print();
    println!(
        "GPH's cell decomposes into offline partitioning + (indexing and \
         estimator build); both are computed once and reused for every τ, \
         matching the constant column of Table IV.\n"
    );
}

//! Multi-process fleet benchmark: real node *processes* (not threads)
//! behind an in-process metastore, driven by [`FleetClient`]s over a
//! nodes × clients sweep. Headline numbers (QPS, client-side p50/p99)
//! go to `BENCH_fleet.json`.
//!
//! Each node is this same binary re-executed in a hidden `fleet-node`
//! mode: it regenerates the identical dataset from the seed, keeps only
//! the rows whose fleet slot it owns, prints `READY <addr>`, and serves
//! until its stdin closes. That gives every node its own address space,
//! page cache, and allocator — the thing a thread-based "fleet" fakes.
//!
//! Companion to `netload` (single-server wire path): this pins the
//! scatter-gather fan-out, manifest routing, and exact top-k merge
//! under process isolation. One fleet query per run is cross-checked
//! against a brute-force scan before the clock starts.

use crate::util::prepare;
use crate::Scale;
use datagen::Profile;
use gph::engine::GphConfig;
use gph_net::{FleetClient, FleetConfig, FleetManifest, FleetNode, MetastoreServer, ServerConfig};
use gph_serve::{QueryService, ServiceConfig, ShardedIndex};
use hamming_core::Dataset;
use std::io::{BufRead, BufReader, Read, Write};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Instant;

/// Fleet-level shard slots (what the manifest partitions).
const FLEET_SLOTS: u32 = 6;
/// Threshold the query stream uses.
const TAU: u32 = 16;
/// Node-count levels swept.
const NODE_LEVELS: [usize; 2] = [1, 3];
/// Client-thread levels swept at each node count.
const CLIENT_LEVELS: [usize; 2] = [2, 4];
/// Dataset seed shared by the parent and every node process.
const SEED: u64 = 0xF1EE7;

fn profile() -> Profile {
    Profile::synthetic_gamma(0.25)
}

fn engine_cfg(dim: usize) -> GphConfig {
    GphConfig::new(GphConfig::suggested_m(dim), TAU as usize)
}

/// The slots group `g` of `n` owns: round-robin over the slot space.
fn slots_for(g: usize, n: usize) -> Vec<u32> {
    (0..FLEET_SLOTS).filter(|s| (*s as usize) % n == g).collect()
}

/// Hidden re-exec entry (`experiments fleet-node --scale <s> --group <g>
/// --of <n>`): serve this group's rows until stdin closes.
pub fn node_main(args: &[String]) {
    let mut scale = Scale::tiny();
    let mut group = 0usize;
    let mut of = 1usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = Scale::parse(&args[i]).expect("fleet-node: bad --scale");
            }
            "--group" => {
                i += 1;
                group = args[i].parse().expect("fleet-node: bad --group");
            }
            "--of" => {
                i += 1;
                of = args[i].parse().expect("fleet-node: bad --of");
            }
            other => panic!("fleet-node: unexpected argument {other}"),
        }
        i += 1;
    }
    let qs = prepare(&profile(), scale, SEED);
    let service = node_service(&qs.data, &slots_for(group, of));
    let server = gph_net::NetServer::bind("127.0.0.1:0", service, ServerConfig::default())
        .expect("fleet-node: bind");
    println!("READY {}", server.local_addr());
    std::io::stdout().flush().expect("fleet-node: flush READY");
    // Park until the parent hangs up, then drain and exit.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    server.shutdown();
}

/// An index over exactly the rows whose fleet slot is in `slots`, under
/// their global ids (caching off, same reasoning as `netload`).
fn node_service(data: &Dataset, slots: &[u32]) -> Arc<QueryService> {
    let index = ShardedIndex::build(&Dataset::new(data.dim()), 2, &engine_cfg(data.dim()))
        .expect("fleet-node: build");
    for id in 0..data.len() as u32 {
        let slot = ShardedIndex::shard_of(id, FLEET_SLOTS as usize) as u32;
        if slots.contains(&slot) {
            index.insert(id, data.row(id as usize)).expect("fleet-node: insert");
        }
    }
    Arc::new(QueryService::new(
        Arc::new(index),
        ServiceConfig { cache_capacity: 0, ..ServiceConfig::default() },
    ))
}

struct NodeProc {
    child: Child,
    addr: String,
}

fn spawn_node(scale_name: &str, group: usize, of: usize) -> NodeProc {
    let exe = std::env::current_exe().expect("fleet: current_exe");
    let mut child = Command::new(exe)
        .args([
            "fleet-node",
            "--scale",
            scale_name,
            "--group",
            &group.to_string(),
            "--of",
            &of.to_string(),
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("fleet: spawn node process");
    let stdout = child.stdout.take().expect("fleet: node stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("fleet: read READY");
    let addr = line
        .trim()
        .strip_prefix("READY ")
        .unwrap_or_else(|| panic!("fleet: node {group}/{of} said {line:?}"))
        .to_string();
    NodeProc { child, addr }
}

struct LevelResult {
    nodes: usize,
    clients: usize,
    queries: u64,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// Node processes re-derive the dataset from a scale *name*, so the
/// parent's scale must be one of the named presets.
fn scale_name(scale: Scale) -> &'static str {
    for name in ["tiny", "small", "medium"] {
        if Scale::parse(name).is_some_and(|s| s.base_rows == scale.base_rows) {
            return name;
        }
    }
    panic!("fleet: only the named scales (tiny|small|medium) can be re-executed in node processes");
}

/// Runs the nodes × clients sweep and writes the JSON report to
/// `BENCH_FLEET_OUT` (default `BENCH_fleet.json`); any failure panics,
/// which is what the CI job wants to fail on.
pub fn run(scale: Scale) {
    let scale_name = scale_name(scale);
    let qs = prepare(&profile(), scale, SEED);
    let metastore =
        MetastoreServer::bind("127.0.0.1:0", ServerConfig::default()).expect("fleet: metastore");
    let meta_addr = metastore.local_addr().to_string();

    let total_queries = (scale.base_rows / 4).max(500) as u64;
    let mut levels: Vec<LevelResult> = Vec::new();
    for (level, &nodes) in NODE_LEVELS.iter().enumerate() {
        let procs: Vec<NodeProc> = (0..nodes).map(|g| spawn_node(scale_name, g, nodes)).collect();
        let manifest = FleetManifest {
            version: level as u64 + 1,
            n_shards: FLEET_SLOTS,
            nodes: (0..nodes)
                .map(|g| FleetNode {
                    slots: slots_for(g, nodes),
                    addrs: vec![procs[g].addr.clone()],
                })
                .collect(),
        };
        gph_net::GphClient::connect(metastore.local_addr())
            .expect("fleet: metastore client")
            .publish_manifest(&manifest)
            .expect("fleet: publish");

        // Correctness gate: one fleet query must equal the brute force.
        let fleet =
            FleetClient::connect(&meta_addr, FleetConfig::default()).expect("fleet: client");
        let probe = qs.queries.row(0);
        let got = fleet.search(probe, TAU).expect("fleet: probe").ids;
        let expect: Vec<u32> = (0..qs.data.len())
            .filter(|&i| {
                hamming_core::distance::hamming_within(qs.data.row(i), probe, TAU).is_some()
            })
            .map(|i| i as u32)
            .collect();
        assert_eq!(got, expect, "fleet: {nodes}-node fan-out diverged from the brute force");
        drop(fleet);

        for &clients in &CLIENT_LEVELS {
            let per_thread = total_queries / clients as u64;
            let t0 = Instant::now();
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let queries = qs.queries.clone();
                    let meta_addr = meta_addr.clone();
                    std::thread::spawn(move || {
                        let fleet = FleetClient::connect(&meta_addr, FleetConfig::default())
                            .expect("fleet: client");
                        let mut latencies = Vec::with_capacity(per_thread as usize);
                        for i in 0..per_thread {
                            let qi = ((c as u64 * 131 + i) % queries.len() as u64) as usize;
                            let t = Instant::now();
                            fleet.search(queries.row(qi), TAU).expect("fleet: search");
                            latencies.push(t.elapsed().as_nanos() as u64);
                        }
                        latencies
                    })
                })
                .collect();
            let mut latencies: Vec<u64> = Vec::new();
            for h in handles {
                latencies.extend(h.join().expect("fleet: client thread"));
            }
            let elapsed = t0.elapsed().as_secs_f64();
            latencies.sort_unstable();
            let ran = latencies.len() as u64;
            let pct = |q: f64| latencies[((q * ran as f64) as usize).min(latencies.len() - 1)];
            levels.push(LevelResult {
                nodes,
                clients,
                queries: ran,
                qps: ran as f64 / elapsed,
                p50_ms: pct(0.50) as f64 / 1e6,
                p99_ms: pct(0.99) as f64 / 1e6,
            });
        }

        for mut p in procs {
            drop(p.child.stdin.take()); // hang up; the node exits cleanly
            let status = p.child.wait().expect("fleet: node wait");
            assert!(status.success(), "fleet: node exited with {status}");
        }
    }
    metastore.shutdown();

    let level_json: Vec<String> = levels
        .iter()
        .map(|l| {
            format!(
                "    {{\"nodes\": {}, \"clients\": {}, \"queries\": {}, \"qps\": {:.1}, \
                 \"p50_ms\": {:.4}, \"p99_ms\": {:.4}}}",
                l.nodes, l.clients, l.queries, l.qps, l.p50_ms, l.p99_ms
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"fleet\",\n  \"rows\": {},\n  \"dims\": {},\n  \
         \"fleet_slots\": {},\n  \"tau\": {},\n  \"levels\": [\n{}\n  ]\n}}\n",
        qs.data.len(),
        qs.data.dim(),
        FLEET_SLOTS,
        TAU,
        level_json.join(",\n"),
    );
    let out = std::env::var("BENCH_FLEET_OUT").unwrap_or_else(|_| "BENCH_fleet.json".into());
    std::fs::write(&out, &json).expect("fleet: write report");

    println!("## fleet ({} rows, {FLEET_SLOTS} slots, multi-process)\n", qs.data.len());
    println!("| nodes | clients | queries | QPS | p50 (ms) | p99 (ms) |");
    println!("|---|---|---|---|---|---|");
    for l in &levels {
        println!(
            "| {} | {} | {} | {:.0} | {:.3} | {:.3} |",
            l.nodes, l.clients, l.queries, l.qps, l.p50_ms, l.p99_ms
        );
    }
    println!("\nreport written to {out}");
}

/// Node processes in the tracing-overhead sweep.
const OBS_NODES: usize = 3;
/// Interleaved untraced/traced measurement rounds (same drift-hedging
/// reasoning as the `obs` experiment: host noise hits both modes alike).
const OBS_ROUNDS: u64 = 8;

/// `fleetobs`: the cost of fleet-wide distributed tracing. The same
/// 3-node fleet and query stream measured with plain `search` and with
/// `search_traced` (per-hop trace stamping, client-side hop timing,
/// [`gph_obs::FleetTrace`] merge) in interleaved rounds; the overhead
/// percentage lands in `BENCH_fleetobs.json`. The acceptance bar is
/// ≤ 5% QPS overhead — reported for the CI artifact trail rather than
/// hard-asserted, since a one-shot ratio on a shared runner is noisy.
/// Mechanism sanity *is* asserted: traced answers must match untraced
/// ones, and every merged trace must carry one well-formed hop per node
/// with `sum(phases) ≤ node total ≤ hop e2e ≤ fleet total`.
pub fn run_obs(scale: Scale) {
    let scale_name = scale_name(scale);
    let qs = prepare(&profile(), scale, SEED);
    let metastore =
        MetastoreServer::bind("127.0.0.1:0", ServerConfig::default()).expect("fleetobs: metastore");
    let meta_addr = metastore.local_addr().to_string();

    let procs: Vec<NodeProc> =
        (0..OBS_NODES).map(|g| spawn_node(scale_name, g, OBS_NODES)).collect();
    let manifest = FleetManifest {
        version: 1,
        n_shards: FLEET_SLOTS,
        nodes: (0..OBS_NODES)
            .map(|g| FleetNode {
                slots: slots_for(g, OBS_NODES),
                addrs: vec![procs[g].addr.clone()],
            })
            .collect(),
    };
    gph_net::GphClient::connect(metastore.local_addr())
        .expect("fleetobs: metastore client")
        .publish_manifest(&manifest)
        .expect("fleetobs: publish");
    let fleet = FleetClient::connect(&meta_addr, FleetConfig::default()).expect("fleetobs: client");

    // Correctness + mechanism gate before the clock starts.
    let probe = qs.queries.row(0);
    let plain = fleet.search(probe, TAU).expect("fleetobs: probe").ids;
    let traced = fleet.search_traced(probe, TAU).expect("fleetobs: traced probe");
    assert_eq!(traced.ids, plain, "fleetobs: traced answers diverged from untraced");
    assert_eq!(traced.trace.hops.len(), OBS_NODES, "fleetobs: one hop per node group");
    for hop in &traced.trace.hops {
        let phases = hop.trace.phase_totals().total();
        assert!(
            phases <= hop.trace.total_ns
                && hop.trace.total_ns <= hop.e2e_ns
                && hop.e2e_ns <= traced.trace.total_ns,
            "fleetobs: hop {} broke the invariant ({phases} / {} / {} / {})",
            hop.node,
            hop.trace.total_ns,
            hop.e2e_ns,
            traced.trace.total_ns
        );
    }

    let total_queries = (scale.base_rows / 4).max(800) as u64;
    let per_round = (total_queries / OBS_ROUNDS).max(1);
    // Warm-up both paths: connections, page faults, worker pools.
    for i in 0..(per_round / 2).max(32) {
        let qi = (i % qs.queries.len() as u64) as usize;
        fleet.search(qs.queries.row(qi), TAU).expect("fleetobs: warm");
        fleet.search_traced(qs.queries.row(qi), TAU).expect("fleetobs: warm traced");
    }

    let mut elapsed = [0f64; 2]; // [untraced, traced]
    let mut ran = [0u64; 2];
    let mut hops_seen = 0u64;
    for round in 0..OBS_ROUNDS {
        for mode in 0..2 {
            let t0 = Instant::now();
            for i in 0..per_round {
                let qi = ((round * per_round + i) % qs.queries.len() as u64) as usize;
                let q = qs.queries.row(qi);
                if mode == 0 {
                    fleet.search(q, TAU).expect("fleetobs: search");
                } else {
                    let r = fleet.search_traced(q, TAU).expect("fleetobs: search_traced");
                    hops_seen += r.trace.hops.len() as u64;
                }
            }
            elapsed[mode] += t0.elapsed().as_secs_f64();
            ran[mode] += per_round;
        }
    }
    assert_eq!(
        hops_seen,
        ran[1] * OBS_NODES as u64,
        "fleetobs: every traced query must return a full hop set"
    );
    let qps = [ran[0] as f64 / elapsed[0], ran[1] as f64 / elapsed[1]];
    let overhead_pct = (qps[0] / qps[1] - 1.0) * 100.0;

    drop(fleet);
    for mut p in procs {
        drop(p.child.stdin.take());
        let status = p.child.wait().expect("fleetobs: node wait");
        assert!(status.success(), "fleetobs: node exited with {status}");
    }
    metastore.shutdown();

    let json = format!(
        "{{\n  \"experiment\": \"fleetobs\",\n  \"rows\": {},\n  \"dims\": {},\n  \
         \"nodes\": {},\n  \"fleet_slots\": {},\n  \"tau\": {},\n  \"rounds\": {},\n  \
         \"modes\": [\n    {{\"mode\": \"untraced\", \"queries\": {}, \"qps\": {:.1}}},\n    \
         {{\"mode\": \"traced\", \"queries\": {}, \"qps\": {:.1}, \
         \"overhead_pct\": {:.2}}}\n  ]\n}}\n",
        qs.data.len(),
        qs.data.dim(),
        OBS_NODES,
        FLEET_SLOTS,
        TAU,
        OBS_ROUNDS,
        ran[0],
        qps[0],
        ran[1],
        qps[1],
        overhead_pct,
    );
    let out = std::env::var("BENCH_FLEETOBS_OUT").unwrap_or_else(|_| "BENCH_fleetobs.json".into());
    std::fs::write(&out, &json).expect("fleetobs: write report");

    println!("## fleetobs ({} rows, {OBS_NODES} nodes, fleet tracing overhead)\n", qs.data.len());
    println!("| mode | queries | QPS | overhead vs untraced |");
    println!("|---|---|---|---|");
    println!("| untraced | {} | {:.0} | — |", ran[0], qps[0]);
    println!("| traced | {} | {:.0} | {overhead_pct:+.2}% |", ran[1], qps[1]);
    println!("\nreport written to {out}");
}

//! Multi-process fleet benchmark: real node *processes* (not threads)
//! behind an in-process metastore, driven by [`FleetClient`]s over a
//! nodes × clients sweep. Headline numbers (QPS, client-side p50/p99)
//! go to `BENCH_fleet.json`.
//!
//! Each node is this same binary re-executed in a hidden `fleet-node`
//! mode: it regenerates the identical dataset from the seed, keeps only
//! the rows whose fleet slot it owns, prints `READY <addr>`, and serves
//! until its stdin closes. That gives every node its own address space,
//! page cache, and allocator — the thing a thread-based "fleet" fakes.
//!
//! Companion to `netload` (single-server wire path): this pins the
//! scatter-gather fan-out, manifest routing, and exact top-k merge
//! under process isolation. One fleet query per run is cross-checked
//! against a brute-force scan before the clock starts.

use crate::util::prepare;
use crate::Scale;
use datagen::Profile;
use gph::engine::GphConfig;
use gph_net::{FleetClient, FleetConfig, FleetManifest, FleetNode, MetastoreServer, ServerConfig};
use gph_serve::{QueryService, ServiceConfig, ShardedIndex};
use hamming_core::Dataset;
use std::io::{BufRead, BufReader, Read, Write};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Instant;

/// Fleet-level shard slots (what the manifest partitions).
const FLEET_SLOTS: u32 = 6;
/// Threshold the query stream uses.
const TAU: u32 = 16;
/// Node-count levels swept.
const NODE_LEVELS: [usize; 2] = [1, 3];
/// Client-thread levels swept at each node count.
const CLIENT_LEVELS: [usize; 2] = [2, 4];
/// Dataset seed shared by the parent and every node process.
const SEED: u64 = 0xF1EE7;

fn profile() -> Profile {
    Profile::synthetic_gamma(0.25)
}

fn engine_cfg(dim: usize) -> GphConfig {
    GphConfig::new(GphConfig::suggested_m(dim), TAU as usize)
}

/// The slots group `g` of `n` owns: round-robin over the slot space.
fn slots_for(g: usize, n: usize) -> Vec<u32> {
    (0..FLEET_SLOTS).filter(|s| (*s as usize) % n == g).collect()
}

/// Hidden re-exec entry (`experiments fleet-node --scale <s> --group <g>
/// --of <n>`): serve this group's rows until stdin closes.
pub fn node_main(args: &[String]) {
    let mut scale = Scale::tiny();
    let mut group = 0usize;
    let mut of = 1usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = Scale::parse(&args[i]).expect("fleet-node: bad --scale");
            }
            "--group" => {
                i += 1;
                group = args[i].parse().expect("fleet-node: bad --group");
            }
            "--of" => {
                i += 1;
                of = args[i].parse().expect("fleet-node: bad --of");
            }
            other => panic!("fleet-node: unexpected argument {other}"),
        }
        i += 1;
    }
    let qs = prepare(&profile(), scale, SEED);
    let service = node_service(&qs.data, &slots_for(group, of));
    let server = gph_net::NetServer::bind("127.0.0.1:0", service, ServerConfig::default())
        .expect("fleet-node: bind");
    println!("READY {}", server.local_addr());
    std::io::stdout().flush().expect("fleet-node: flush READY");
    // Park until the parent hangs up, then drain and exit.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    server.shutdown();
}

/// An index over exactly the rows whose fleet slot is in `slots`, under
/// their global ids (caching off, same reasoning as `netload`).
fn node_service(data: &Dataset, slots: &[u32]) -> Arc<QueryService> {
    let index = ShardedIndex::build(&Dataset::new(data.dim()), 2, &engine_cfg(data.dim()))
        .expect("fleet-node: build");
    for id in 0..data.len() as u32 {
        let slot = ShardedIndex::shard_of(id, FLEET_SLOTS as usize) as u32;
        if slots.contains(&slot) {
            index.insert(id, data.row(id as usize)).expect("fleet-node: insert");
        }
    }
    Arc::new(QueryService::new(
        Arc::new(index),
        ServiceConfig { cache_capacity: 0, ..ServiceConfig::default() },
    ))
}

struct NodeProc {
    child: Child,
    addr: String,
}

fn spawn_node(scale_name: &str, group: usize, of: usize) -> NodeProc {
    let exe = std::env::current_exe().expect("fleet: current_exe");
    let mut child = Command::new(exe)
        .args([
            "fleet-node",
            "--scale",
            scale_name,
            "--group",
            &group.to_string(),
            "--of",
            &of.to_string(),
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("fleet: spawn node process");
    let stdout = child.stdout.take().expect("fleet: node stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("fleet: read READY");
    let addr = line
        .trim()
        .strip_prefix("READY ")
        .unwrap_or_else(|| panic!("fleet: node {group}/{of} said {line:?}"))
        .to_string();
    NodeProc { child, addr }
}

struct LevelResult {
    nodes: usize,
    clients: usize,
    queries: u64,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// Node processes re-derive the dataset from a scale *name*, so the
/// parent's scale must be one of the named presets.
fn scale_name(scale: Scale) -> &'static str {
    for name in ["tiny", "small", "medium"] {
        if Scale::parse(name).is_some_and(|s| s.base_rows == scale.base_rows) {
            return name;
        }
    }
    panic!("fleet: only the named scales (tiny|small|medium) can be re-executed in node processes");
}

/// Runs the nodes × clients sweep and writes the JSON report to
/// `BENCH_FLEET_OUT` (default `BENCH_fleet.json`); any failure panics,
/// which is what the CI job wants to fail on.
pub fn run(scale: Scale) {
    let scale_name = scale_name(scale);
    let qs = prepare(&profile(), scale, SEED);
    let metastore =
        MetastoreServer::bind("127.0.0.1:0", ServerConfig::default()).expect("fleet: metastore");
    let meta_addr = metastore.local_addr().to_string();

    let total_queries = (scale.base_rows / 4).max(500) as u64;
    let mut levels: Vec<LevelResult> = Vec::new();
    for (level, &nodes) in NODE_LEVELS.iter().enumerate() {
        let procs: Vec<NodeProc> = (0..nodes).map(|g| spawn_node(scale_name, g, nodes)).collect();
        let manifest = FleetManifest {
            version: level as u64 + 1,
            n_shards: FLEET_SLOTS,
            nodes: (0..nodes)
                .map(|g| FleetNode {
                    slots: slots_for(g, nodes),
                    addrs: vec![procs[g].addr.clone()],
                })
                .collect(),
        };
        gph_net::GphClient::connect(metastore.local_addr())
            .expect("fleet: metastore client")
            .publish_manifest(&manifest)
            .expect("fleet: publish");

        // Correctness gate: one fleet query must equal the brute force.
        let fleet =
            FleetClient::connect(&meta_addr, FleetConfig::default()).expect("fleet: client");
        let probe = qs.queries.row(0);
        let got = fleet.search(probe, TAU).expect("fleet: probe").ids;
        let expect: Vec<u32> = (0..qs.data.len())
            .filter(|&i| {
                hamming_core::distance::hamming_within(qs.data.row(i), probe, TAU).is_some()
            })
            .map(|i| i as u32)
            .collect();
        assert_eq!(got, expect, "fleet: {nodes}-node fan-out diverged from the brute force");
        drop(fleet);

        for &clients in &CLIENT_LEVELS {
            let per_thread = total_queries / clients as u64;
            let t0 = Instant::now();
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let queries = qs.queries.clone();
                    let meta_addr = meta_addr.clone();
                    std::thread::spawn(move || {
                        let fleet = FleetClient::connect(&meta_addr, FleetConfig::default())
                            .expect("fleet: client");
                        let mut latencies = Vec::with_capacity(per_thread as usize);
                        for i in 0..per_thread {
                            let qi = ((c as u64 * 131 + i) % queries.len() as u64) as usize;
                            let t = Instant::now();
                            fleet.search(queries.row(qi), TAU).expect("fleet: search");
                            latencies.push(t.elapsed().as_nanos() as u64);
                        }
                        latencies
                    })
                })
                .collect();
            let mut latencies: Vec<u64> = Vec::new();
            for h in handles {
                latencies.extend(h.join().expect("fleet: client thread"));
            }
            let elapsed = t0.elapsed().as_secs_f64();
            latencies.sort_unstable();
            let ran = latencies.len() as u64;
            let pct = |q: f64| latencies[((q * ran as f64) as usize).min(latencies.len() - 1)];
            levels.push(LevelResult {
                nodes,
                clients,
                queries: ran,
                qps: ran as f64 / elapsed,
                p50_ms: pct(0.50) as f64 / 1e6,
                p99_ms: pct(0.99) as f64 / 1e6,
            });
        }

        for mut p in procs {
            drop(p.child.stdin.take()); // hang up; the node exits cleanly
            let status = p.child.wait().expect("fleet: node wait");
            assert!(status.success(), "fleet: node exited with {status}");
        }
    }
    metastore.shutdown();

    let level_json: Vec<String> = levels
        .iter()
        .map(|l| {
            format!(
                "    {{\"nodes\": {}, \"clients\": {}, \"queries\": {}, \"qps\": {:.1}, \
                 \"p50_ms\": {:.4}, \"p99_ms\": {:.4}}}",
                l.nodes, l.clients, l.queries, l.qps, l.p50_ms, l.p99_ms
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"experiment\": \"fleet\",\n  \"rows\": {},\n  \"dims\": {},\n  \
         \"fleet_slots\": {},\n  \"tau\": {},\n  \"levels\": [\n{}\n  ]\n}}\n",
        qs.data.len(),
        qs.data.dim(),
        FLEET_SLOTS,
        TAU,
        level_json.join(",\n"),
    );
    let out = std::env::var("BENCH_FLEET_OUT").unwrap_or_else(|_| "BENCH_fleet.json".into());
    std::fs::write(&out, &json).expect("fleet: write report");

    println!("## fleet ({} rows, {FLEET_SLOTS} slots, multi-process)\n", qs.data.len());
    println!("| nodes | clients | queries | QPS | p50 (ms) | p99 (ms) |");
    println!("|---|---|---|---|---|---|");
    for l in &levels {
        println!(
            "| {} | {} | {} | {:.0} | {:.3} | {:.3} |",
            l.nodes, l.clients, l.queries, l.qps, l.p50_ms, l.p99_ms
        );
    }
    println!("\nreport written to {out}");
}

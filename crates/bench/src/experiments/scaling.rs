//! Fig. 8 — scaling studies.
//!
//! * 8(a)–(c): varying the number of dimensions (25–100 % samples, τ
//!   scaling linearly with n).
//! * 8(d): varying dataset skewness γ (the paper's own synthetic
//!   generator), τ = 12.
//! * 8(e)/(f): robustness to a mismatch between the partitioning
//!   workload's distribution and the real queries' distribution
//!   (GPH-0.1 vs GPH-0.5). Expected: near-identical times, small gap at
//!   the largest τ.

use crate::util::{gph_config_for, ms, prepare, time_queries, GphEngine, Scale, Table};
use baselines::{HmSearch, Mih, MinHashLsh, PartAlloc, SearchIndex};
use datagen::{sample_queries, Profile};
use gph::partition_opt::{PartitionStrategy, WorkloadSpec};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Fig. 8(a)–(c): dimension scaling on the three focus datasets.
pub fn run_dims(scale: Scale) {
    println!("## Fig. 8(a-c) — varying number of dimensions (mean ms/query)\n");
    let mut table = Table::new(&["dataset", "dims", "tau", "GPH", "MIH", "HmSearch", "PartAlloc"]);
    // τ for the full dimensionality, scaled linearly with the sample.
    for (profile, tau_full) in
        [(Profile::sift_like(), 12u32), (Profile::gist_like(), 24), (Profile::pubchem_like(), 12)]
    {
        let qs = prepare(&profile, scale, 0xF8);
        let n = profile.dim;
        for pct in [25usize, 50, 75, 100] {
            let keep = (n * pct / 100).max(8);
            let tau = (tau_full as usize * pct / 100).max(2) as u32;
            // Random dimension sample, fixed seed.
            let mut dims: Vec<usize> = (0..n).collect();
            let mut rng = ChaCha8Rng::seed_from_u64(0xD1A + pct as u64);
            dims.shuffle(&mut rng);
            dims.truncate(keep);
            dims.sort_unstable();
            let data = qs.data.select_dims(&dims).expect("valid dims");
            let queries = qs.queries.select_dims(&dims).expect("valid dims");
            let workload = qs.workload.select_dims(&dims).expect("valid dims");

            let mut cfg = gph_config_for(keep, tau as usize);
            cfg.strategy = PartitionStrategy::default();
            cfg.workload = Some(WorkloadSpec::new(workload, vec![tau.max(2) / 2, tau]));
            let gph_engine = GphEngine::build_with(data.clone(), cfg);
            let mih = Mih::build(data.clone(), Mih::suggested_m(keep, data.len())).expect("mih");
            let hm = HmSearch::build(data.clone(), tau).expect("hm");
            let pa = PartAlloc::build(data.clone(), tau).expect("pa");
            let engines: [&dyn SearchIndex; 4] = [&gph_engine, &mih, &hm, &pa];
            let mut cells = vec![profile.name.clone(), keep.to_string(), tau.to_string()];
            for e in engines {
                cells.push(ms(time_queries(e, &queries, tau).mean_ms));
            }
            table.row(cells);
        }
    }
    table.print();
}

/// Fig. 8(d): skewness scaling, τ = 12 on the paper's synthetic data.
pub fn run_skew(scale: Scale) {
    println!("## Fig. 8(d) — varying skewness gamma (tau = 12, mean ms/query)\n");
    let tau = 12u32;
    let mut table = Table::new(&["gamma", "GPH", "MIH", "HmSearch", "PartAlloc", "LSH"]);
    for gamma in [0.1f64, 0.2, 0.3, 0.4, 0.5] {
        let profile = Profile::synthetic_gamma(gamma);
        let qs = prepare(&profile, scale, 0xF8D);
        let mut cfg = gph_config_for(profile.dim, tau as usize);
        cfg.strategy = PartitionStrategy::default();
        cfg.workload = Some(WorkloadSpec::new(qs.workload.clone(), vec![6, tau]));
        let gph_engine = GphEngine::build_with(qs.data.clone(), cfg);
        let mih =
            Mih::build(qs.data.clone(), Mih::suggested_m(profile.dim, qs.data.len())).expect("mih");
        let hm = HmSearch::build(qs.data.clone(), tau).expect("hm");
        let pa = PartAlloc::build(qs.data.clone(), tau).expect("pa");
        let lsh = MinHashLsh::build(qs.data.clone(), tau).expect("lsh");
        let engines: [&dyn SearchIndex; 5] = [&gph_engine, &mih, &hm, &pa, &lsh];
        let mut cells = vec![format!("{gamma:.1}")];
        for e in engines {
            cells.push(ms(time_queries(e, &qs.queries, tau).mean_ms));
        }
        table.row(cells);
    }
    table.print();
}

/// Fig. 8(e)/(f): partitioning-workload distribution mismatch.
pub fn run_workload_mismatch(scale: Scale) {
    println!("## Fig. 8(e,f) — query-distribution robustness (mean ms/query)\n");
    let mut table =
        Table::new(&["data gamma", "query gamma", "tau", "GPH-matched", "GPH-mismatched"]);
    for (gamma_d, gamma_q) in [(0.5f64, 0.1f64), (0.1, 0.5)] {
        // Data from γ_D; real queries from γ_q; two GPH builds whose
        // partitioning workloads come from γ_D (matched to data ≠ queries)
        // and γ_q (matched to queries).
        let data_profile = Profile::synthetic_gamma(gamma_d);
        let query_profile = Profile::synthetic_gamma(gamma_q);
        let qs = prepare(&data_profile, scale, 0xF8E);
        let foreign = query_profile.generate(scale.n_queries + scale.n_workload, 0xF8F);
        let foreign_qs = sample_queries(
            &foreign,
            scale.n_queries,
            scale.n_workload.min(foreign.len() - scale.n_queries - 1),
            3,
        );
        let queries = &foreign_qs.queries;
        for tau in [3u32, 6, 9, 12] {
            let build = |wl_queries: &hamming_core::Dataset| {
                let mut cfg = gph_config_for(data_profile.dim, 12);
                cfg.strategy = PartitionStrategy::default();
                cfg.workload = Some(WorkloadSpec::new(wl_queries.clone(), vec![3, 6, 9, 12]));
                GphEngine::build_with(qs.data.clone(), cfg)
            };
            // "Matched": workload drawn from the query distribution γ_q.
            let matched = build(&foreign_qs.workload);
            // "Mismatched": workload drawn from the data distribution γ_D.
            let mismatched = build(&qs.workload);
            table.row(vec![
                format!("{gamma_d:.1}"),
                format!("{gamma_q:.1}"),
                tau.to_string(),
                ms(time_queries(&matched, queries, tau).mean_ms),
                ms(time_queries(&mismatched, queries, tau).mean_ms),
            ]);
        }
    }
    table.print();
    println!(
        "The paper's claim: computing the partitioning from a workload with \
         a different distribution costs almost nothing (≤ ~11 % at τ = 12).\n"
    );
}

//! Hot-path microbenchmark: verification-kernel throughput and
//! end-to-end QPS, written to `BENCH_hotpath.json`.
//!
//! The query hot path spends its time in two places the CSR refactor
//! targets: probing postings and verifying candidates. This experiment
//! isolates the second — the same deduplicated candidate buffer is
//! verified twice against the reference 256-bit profile
//! ([`Profile::uqvideo_like`], 4 words per row):
//!
//! * **scalar** — the pre-refactor phase 4: one
//!   [`hamming_core::distance::hamming_within`] call per candidate;
//! * **batched** — [`Dataset::verify_candidates`], the streaming kernel
//!   the engine now uses (width-specialized, SIMD when the `simd`
//!   feature is on and the CPU has AVX2+POPCNT).
//!
//! Both passes produce identical result sets (asserted); the report
//! carries candidates-verified/sec for each, their ratio, whether the
//! SIMD kernels were live, and end-to-end engine QPS at the reference
//! threshold. CI runs this at `--scale tiny --features simd` and uploads
//! the JSON, making kernel regressions a broken series rather than an
//! anecdote.

use crate::util::{gph_config_for, prepare};
use crate::Scale;
use datagen::Profile;
use gph::engine::Gph;
use hamming_core::distance::{hamming_within, simd_active};
use hamming_core::Dataset;
use std::time::Instant;

/// Reference threshold: the middle of the uqvideo τ sweep.
const TAU: u32 = 32;
/// Minimum wall time per kernel measurement; rounds repeat until this
/// elapses so tiny scales still produce stable rates.
const MIN_MEASURE_S: f64 = 0.25;

/// Runs the hot-path benchmark and writes the JSON report (path from
/// `BENCH_HOTPATH_OUT`, default `BENCH_hotpath.json`).
pub fn run(scale: Scale) {
    let profile = Profile::uqvideo_like();
    let qs = prepare(&profile, scale, 0x407_0A74);
    run_inner(&qs.data, &qs.queries);
}

/// One timed pass of the scalar one-at-a-time baseline.
fn scalar_verify(data: &Dataset, query: &[u64], tau: u32, candidates: &[u32]) -> Vec<u32> {
    candidates
        .iter()
        .copied()
        .filter(|&id| hamming_within(data.row(id as usize), query, tau).is_some())
        .collect()
}

/// Times `body` over whole rounds until [`MIN_MEASURE_S`] elapses,
/// returning (total seconds, rounds run).
fn measure<F: FnMut()>(mut body: F) -> (f64, usize) {
    let mut rounds = 0usize;
    let t = Instant::now();
    loop {
        body();
        rounds += 1;
        let s = t.elapsed().as_secs_f64();
        if s >= MIN_MEASURE_S {
            return (s, rounds);
        }
    }
}

fn run_inner(data: &Dataset, queries: &Dataset) {
    let engine = Gph::build(data.clone(), &gph_config_for(data.dim(), TAU as usize))
        .expect("hotpath: build");

    // The candidate buffer each query hands to phase 4: every row id, the
    // worst case the verifier can face and the fairest apples-to-apples
    // input (no dependence on how selective the probe phase was).
    let candidates: Vec<u32> = (0..data.len() as u32).collect();
    let qrefs: Vec<&[u64]> = (0..queries.len()).map(|i| queries.row(i)).collect();

    // Agreement first: both kernels must accept exactly the same ids.
    let mut batched_out = Vec::with_capacity(candidates.len());
    for q in &qrefs {
        batched_out.clear();
        data.verify_candidates(q, TAU, &candidates, &mut batched_out);
        assert_eq!(
            batched_out,
            scalar_verify(data, q, TAU, &candidates),
            "hotpath: batched and scalar verification diverged"
        );
    }

    // Scalar one-at-a-time baseline (the pre-refactor phase 4).
    let (scalar_s, scalar_rounds) = measure(|| {
        for q in &qrefs {
            std::hint::black_box(scalar_verify(data, q, TAU, &candidates));
        }
    });
    // Batched streaming kernel (what the engine runs now).
    let mut out = Vec::with_capacity(candidates.len());
    let (batched_s, batched_rounds) = measure(|| {
        for q in &qrefs {
            out.clear();
            data.verify_candidates(q, TAU, &candidates, &mut out);
            std::hint::black_box(&out);
        }
    });

    let per_round = (qrefs.len() * candidates.len()) as f64;
    let scalar_cps = per_round * scalar_rounds as f64 / scalar_s;
    let batched_cps = per_round * batched_rounds as f64 / batched_s;
    let speedup = batched_cps / scalar_cps;

    // End-to-end QPS through the full engine (all four phases).
    let (serve_s, serve_rounds) = measure(|| {
        for q in &qrefs {
            std::hint::black_box(engine.search(q, TAU));
        }
    });
    let qps = qrefs.len() as f64 * serve_rounds as f64 / serve_s;
    let st = engine.search_with_stats(qrefs[0], TAU).stats;

    let json = format!(
        "{{\n  \"experiment\": \"hotpath\",\n  \"rows\": {},\n  \"dims\": {},\n  \
         \"queries\": {},\n  \"tau\": {},\n  \"simd_active\": {},\n  \
         \"scalar_cands_per_s\": {:.0},\n  \"batched_cands_per_s\": {:.0},\n  \
         \"speedup\": {:.3},\n  \"qps\": {:.1},\n  \
         \"sum_postings\": {},\n  \"n_scanned\": {},\n  \"n_candidates\": {}\n}}\n",
        data.len(),
        data.dim(),
        qrefs.len(),
        TAU,
        simd_active(),
        scalar_cps,
        batched_cps,
        speedup,
        qps,
        st.sum_postings,
        st.n_scanned,
        st.n_candidates,
    );
    let out_path =
        std::env::var("BENCH_HOTPATH_OUT").unwrap_or_else(|_| "BENCH_hotpath.json".into());
    std::fs::write(&out_path, &json).expect("hotpath: write report");

    println!(
        "## hotpath ({} rows x {} dims, {} queries, tau = {TAU})\n",
        data.len(),
        data.dim(),
        qrefs.len()
    );
    println!("| metric | value |");
    println!("|---|---|");
    println!("| simd active | {} |", simd_active());
    println!("| scalar verify | {:.1} M cand/s |", scalar_cps / 1e6);
    println!("| batched verify | {:.1} M cand/s |", batched_cps / 1e6);
    println!("| speedup | {speedup:.2}x |");
    println!("| end-to-end QPS | {qps:.0} |");
    println!("\nreport written to {out_path}");
}

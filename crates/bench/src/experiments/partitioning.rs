//! Fig. 4 — dimension partitioning strategies and initializations.
//!
//! * 4(a)/(c)/(e): query time under **GR** (the paper's heuristic) vs
//!   **OR** (original order), **OS** (skew balancing), **DD** (correlation
//!   minimizing), **RS** (random shuffle). Expected shape: near-ties on
//!   SIFT-like, GR ahead by growing factors on GIST-like/PubChem-like.
//! * 4(b)/(d)/(f): the hill climber started from **GreedyInit** (entropy),
//!   **OriginalInit**, **RandomInit**.

use crate::util::{gph_config_for, ms, prepare, tau_sweep, GphEngine, Scale, Table};
use datagen::Profile;
use gph::partition_opt::{HeuristicConfig, InitKind, PartitionStrategy, WorkloadSpec};

fn focus_profiles() -> Vec<Profile> {
    vec![Profile::sift_like(), Profile::gist_like(), Profile::pubchem_like()]
}

/// Runs both halves of Fig. 4.
pub fn run(scale: Scale) {
    run_strategies(scale);
    run_inits(scale);
}

fn heuristic_cfg(scale: Scale, init: InitKind) -> HeuristicConfig {
    HeuristicConfig {
        init,
        max_iters: 8,
        move_budget: Some(2048),
        sample_rows: scale.base_rows.min(1000),
        seed: 0xF4,
    }
}

fn run_strategies(scale: Scale) {
    println!("## Fig. 4(a,c,e) — partitioning strategies (mean ms/query, GPH engine)\n");
    let mut table = Table::new(&["dataset", "tau", "GR", "OR", "OS", "DD", "RS"]);
    for profile in focus_profiles() {
        let qs = prepare(&profile, scale, 0xF4);
        let taus = tau_sweep(&profile.name);
        let tau_max = *taus.last().expect("nonempty") as usize;
        let wl = WorkloadSpec::new(qs.workload.clone(), taus.clone());
        let strategies: Vec<(&str, PartitionStrategy)> = vec![
            ("GR", PartitionStrategy::Heuristic(heuristic_cfg(scale, InitKind::Greedy))),
            ("OR", PartitionStrategy::Original),
            ("OS", PartitionStrategy::Os),
            ("DD", PartitionStrategy::Dd),
            ("RS", PartitionStrategy::RandomShuffle { seed: 0x55 }),
        ];
        let engines: Vec<GphEngine> = strategies
            .iter()
            .map(|(_, strat)| {
                let mut cfg = gph_config_for(profile.dim, tau_max);
                cfg.strategy = strat.clone();
                cfg.workload = Some(wl.clone());
                GphEngine::build_with(qs.data.clone(), cfg)
            })
            .collect();
        for &tau in &taus {
            let mut cells = vec![profile.name.clone(), tau.to_string()];
            for engine in &engines {
                let t = crate::util::time_queries(engine, &qs.queries, tau);
                cells.push(format!("{} ({:.0})", ms(t.mean_ms), t.mean_candidates));
            }
            table.row(cells);
        }
    }
    table.print();
    println!("Each cell: mean ms/query (mean candidates).\n");
}

fn run_inits(scale: Scale) {
    println!("## Fig. 4(b,d,f) — initial partitioning for the hill climber\n");
    let mut table = Table::new(&["dataset", "tau", "GreedyInit", "OriginalInit", "RandomInit"]);
    for profile in focus_profiles() {
        let qs = prepare(&profile, scale, 0xF4);
        let taus = tau_sweep(&profile.name);
        let tau_max = *taus.last().expect("nonempty") as usize;
        let wl = WorkloadSpec::new(qs.workload.clone(), taus.clone());
        let inits = [InitKind::Greedy, InitKind::Original, InitKind::Random { seed: 0x99 }];
        let engines: Vec<GphEngine> = inits
            .iter()
            .map(|&init| {
                let mut cfg = gph_config_for(profile.dim, tau_max);
                cfg.strategy = PartitionStrategy::Heuristic(heuristic_cfg(scale, init));
                cfg.workload = Some(wl.clone());
                GphEngine::build_with(qs.data.clone(), cfg)
            })
            .collect();
        for &tau in &taus {
            let mut cells = vec![profile.name.clone(), tau.to_string()];
            for engine in &engines {
                let t = crate::util::time_queries(engine, &qs.queries, tau);
                cells.push(format!("{} ({:.0})", ms(t.mean_ms), t.mean_candidates));
            }
            table.row(cells);
        }
    }
    table.print();
    println!("Each cell: mean ms/query (mean candidates).\n");
}

//! Fig. 5 — effect of the partition count `m`.
//!
//! Expected shape (paper): small `m` wins at small τ; the best `m` creeps
//! up with τ; the paper's rule of thumb is `m ≈ n/24`.

use crate::util::{gph_config_for, ms, prepare, tau_sweep, GphEngine, Scale, Table};
use datagen::Profile;
use gph::partition_opt::{PartitionStrategy, WorkloadSpec};

fn m_candidates(profile: &Profile) -> Vec<usize> {
    match profile.dim {
        128 => vec![4, 6, 8, 10, 12],
        256 => vec![8, 10, 12, 16, 20],
        _ => vec![24, 36, 44, 56, 62],
    }
}

/// Runs the m sweep on the three focus datasets.
pub fn run(scale: Scale) {
    println!("## Fig. 5 — effect of partition number m (mean ms/query)\n");
    for profile in [Profile::sift_like(), Profile::gist_like(), Profile::pubchem_like()] {
        let qs = prepare(&profile, scale, 0xF5);
        let taus = tau_sweep(&profile.name);
        let tau_max = *taus.last().expect("nonempty") as usize;
        let ms_list = m_candidates(&profile);
        let wl = WorkloadSpec::new(qs.workload.clone(), taus.clone());
        let mut header: Vec<String> = vec!["tau".into()];
        header.extend(ms_list.iter().map(|m| format!("m={m}")));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut table = Table::new(&header_refs);
        let engines: Vec<GphEngine> = ms_list
            .iter()
            .map(|&m| {
                let mut cfg = gph_config_for(profile.dim, tau_max);
                cfg.m = m;
                cfg.strategy = PartitionStrategy::default();
                cfg.workload = Some(wl.clone());
                GphEngine::build_with(qs.data.clone(), cfg)
            })
            .collect();
        println!("### {} (suggested m = n/24 = {})\n", profile.name, profile.dim / 24);
        for &tau in &taus {
            let mut cells = vec![tau.to_string()];
            for engine in &engines {
                let t = crate::util::time_queries(engine, &qs.queries, tau);
                cells.push(ms(t.mean_ms));
            }
            table.row(cells);
        }
        table.print();
    }
}

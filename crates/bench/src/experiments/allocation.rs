//! Fig. 3 — threshold allocation: DP (Algorithm 1) vs RR (round robin).
//!
//! Both allocators run on the same random-shuffle equi-width partitioning
//! (the paper's setup for this comparison) so that only the allocation
//! differs. Reported per τ: mean estimated cost (`Σ CN` of the chosen
//! vector) and mean query time. Expected shape: DP ≪ RR, with the gap
//! growing with skew (PubChem-like ≫ GIST-like ≫ SIFT-like).

use crate::util::{gph_config_for, ms, prepare, tau_sweep, GphEngine, Scale, Table};
use datagen::Profile;
use gph::partition_opt::PartitionStrategy;
use gph::AllocatorKind;

/// Runs the DP-vs-RR comparison on the three focus datasets.
pub fn run(scale: Scale) {
    println!("## Fig. 3 — threshold allocation: RR vs DP\n");
    let mut table =
        Table::new(&["dataset", "tau", "RR est.cost", "DP est.cost", "RR ms", "DP ms", "speedup"]);
    for profile in [Profile::sift_like(), Profile::gist_like(), Profile::pubchem_like()] {
        let qs = prepare(&profile, scale, 0xF3);
        let taus = tau_sweep(&profile.name);
        let tau_max = *taus.last().expect("nonempty") as usize;
        let build = |alloc: AllocatorKind| {
            let mut cfg = gph_config_for(profile.dim, tau_max);
            cfg.allocator = alloc;
            // Same partitioning for both allocators: shuffled equi-width.
            cfg.strategy = PartitionStrategy::RandomShuffle { seed: 0xF3F3 };
            GphEngine::build_with(qs.data.clone(), cfg)
        };
        let rr = build(AllocatorKind::RoundRobin);
        let dp = build(AllocatorKind::Dp);
        for &tau in &taus {
            let mut cost = [0.0f64; 2];
            let mut time_ns = [0u128; 2];
            for (ei, engine) in [&rr, &dp].into_iter().enumerate() {
                for qi in 0..qs.queries.len() {
                    let t = std::time::Instant::now();
                    let res = engine.inner().search_with_stats(qs.queries.row(qi), tau);
                    time_ns[ei] += t.elapsed().as_nanos();
                    cost[ei] += res.stats.estimated_cost;
                }
            }
            let nq = qs.queries.len().max(1) as f64;
            let rr_ms = time_ns[0] as f64 / 1e6 / nq;
            let dp_ms = time_ns[1] as f64 / 1e6 / nq;
            table.row(vec![
                profile.name.clone(),
                tau.to_string(),
                format!("{:.0}", cost[0] / nq),
                format!("{:.0}", cost[1] / nq),
                ms(rr_ms),
                ms(dp_ms),
                format!("{:.1}x", rr_ms / dp_ms.max(1e-9)),
            ]);
        }
    }
    table.print();
    println!(
        "Note: RR reports the estimated cost of its own (round-robin) vector \
         under the same CN estimates the DP uses.\n"
    );
}

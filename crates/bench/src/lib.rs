//! # bench
//!
//! Experiment harness regenerating every table and figure of the GPH
//! paper's evaluation (§VII) on the synthetic stand-in datasets, plus
//! Criterion micro-benchmarks. Run via:
//!
//! ```text
//! cargo run --release -p bench --bin experiments -- <exp> [--scale tiny|small|medium]
//! ```
//!
//! where `<exp>` is one of `fig1 fig2a fig2b fig3 table3 fig4 fig5 fig6
//! table4 fig7 fig8abc fig8d fig8ef ablation scalecheck smoke hotpath
//! mutations netload obs coldstore all`. Each runner prints a markdown table with the same rows/series
//! as the paper artifact; the workspace-level `PAPER.md` maps every
//! figure/table to its experiment id and lists the known deviations.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod util;

pub use util::{GphEngine, Scale};

//! Experiment runner CLI.
//!
//! ```text
//! experiments <exp> [--scale tiny|small|medium]
//! ```

use bench::experiments::{dispatch, EXPERIMENTS};
use bench::Scale;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Hidden re-exec mode: the `fleet` experiment spawns this binary as
    // its node processes. Not a user-facing experiment id.
    if args.first().map(String::as_str) == Some("fleet-node") {
        bench::experiments::fleet::node_main(&args[1..]);
        return ExitCode::SUCCESS;
    }
    let mut exp: Option<String> = None;
    let mut scale = Scale::small();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|s| Scale::parse(s)) else {
                    eprintln!("--scale needs one of: tiny, small, medium");
                    return ExitCode::FAILURE;
                };
                scale = v;
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if exp.is_none() => exp = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument: {other}");
                usage();
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let Some(exp) = exp else {
        usage();
        return ExitCode::FAILURE;
    };
    println!("# GPH experiments — {exp} (rows≈{}, {} queries)\n", scale.base_rows, scale.n_queries);
    let t = std::time::Instant::now();
    if !dispatch(&exp, scale) {
        eprintln!("unknown experiment: {exp}");
        usage();
        return ExitCode::FAILURE;
    }
    println!("[done in {:.1}s]", t.elapsed().as_secs_f64());
    ExitCode::SUCCESS
}

fn usage() {
    eprintln!("usage: experiments <exp> [--scale tiny|small|medium]");
    eprintln!("experiments: {}", EXPERIMENTS.join(" "));
}

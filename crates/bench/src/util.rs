//! Shared experiment infrastructure: scales, dataset preparation, engine
//! adapters, timing.

use baselines::{CandidateStats, SearchIndex};
use datagen::{sample_queries, Profile, QuerySet};
use gph::engine::{Gph, GphConfig};
use gph::partition_opt::{HeuristicConfig, PartitionStrategy, WorkloadSpec};
use gph::{AllocatorKind, EstimatorKind};
use hamming_core::Dataset;
use std::time::Instant;

/// Experiment scale: how many rows/queries to generate.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Base data cardinality for ≤ 512-dimensional profiles.
    pub base_rows: usize,
    /// Measured queries per point.
    pub n_queries: usize,
    /// Partitioning workload size (the paper uses 100).
    pub n_workload: usize,
}

impl Scale {
    /// CI-sized: seconds per experiment.
    pub fn tiny() -> Self {
        Scale { base_rows: 3_000, n_queries: 20, n_workload: 20 }
    }

    /// Default laptop scale (≈ minutes for the full suite).
    pub fn small() -> Self {
        Scale { base_rows: 20_000, n_queries: 50, n_workload: 40 }
    }

    /// Heavier runs for more stable timings.
    pub fn medium() -> Self {
        Scale { base_rows: 100_000, n_queries: 100, n_workload: 100 }
    }

    /// Parses `tiny|small|medium`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "tiny" => Some(Self::tiny()),
            "small" => Some(Self::small()),
            "medium" => Some(Self::medium()),
            _ => None,
        }
    }

    /// Rows for a given dimensionality (wide PubChem-like vectors get
    /// half the budget to keep memory flat across datasets).
    pub fn rows_for(&self, dim: usize) -> usize {
        if dim > 512 {
            self.base_rows / 2
        } else {
            self.base_rows
        }
    }
}

/// The τ sweep used for each paper dataset (§VII-A's settings, thinned to
/// five points per dataset).
pub fn tau_sweep(profile_name: &str) -> Vec<u32> {
    match profile_name {
        s if s.starts_with("sift") => vec![4, 8, 16, 24, 32],
        s if s.starts_with("gist") => vec![8, 16, 32, 48, 64],
        s if s.starts_with("pubchem") => vec![4, 8, 16, 24, 32],
        s if s.starts_with("fasttext") => vec![4, 8, 12, 16, 20],
        s if s.starts_with("uqvideo") => vec![8, 16, 32, 40, 48],
        _ => vec![3, 6, 9, 12],
    }
}

/// Generates a profile at scale and carves out query/workload sets.
pub fn prepare(profile: &Profile, scale: Scale, seed: u64) -> QuerySet {
    let rows = scale.rows_for(profile.dim) + scale.n_queries + scale.n_workload;
    let ds = profile.generate(rows, seed);
    sample_queries(&ds, scale.n_queries, scale.n_workload, seed ^ 0x51)
}

/// Per-point timing/candidate aggregates over a query batch.
#[derive(Clone, Copy, Debug, Default)]
pub struct Timing {
    /// Mean wall time per query, milliseconds.
    pub mean_ms: f64,
    /// Mean distinct candidates per query.
    pub mean_candidates: f64,
    /// Mean `Σ|I_s|` per query.
    pub mean_postings: f64,
    /// Mean results per query.
    pub mean_results: f64,
}

/// Runs every query at `tau` against `engine` and averages.
pub fn time_queries(engine: &dyn SearchIndex, queries: &Dataset, tau: u32) -> Timing {
    let mut total_ns = 0u128;
    let mut stats_acc = CandidateStats::default();
    for qi in 0..queries.len() {
        let q = queries.row(qi);
        let t = Instant::now();
        let (_, st) = engine.search_with_stats(q, tau);
        total_ns += t.elapsed().as_nanos();
        stats_acc.n_candidates += st.n_candidates;
        stats_acc.sum_postings += st.sum_postings;
        stats_acc.n_results += st.n_results;
    }
    let nq = queries.len().max(1) as f64;
    Timing {
        mean_ms: total_ns as f64 / 1e6 / nq,
        mean_candidates: stats_acc.n_candidates as f64 / nq,
        mean_postings: stats_acc.sum_postings as f64 / nq,
        mean_results: stats_acc.n_results as f64 / nq,
    }
}

/// Recall of `engine` (approximate methods) against the linear scan.
pub fn measure_recall(
    engine: &dyn SearchIndex,
    data: &Dataset,
    queries: &Dataset,
    tau: u32,
) -> f64 {
    let mut found = 0usize;
    let mut truth_total = 0usize;
    for qi in 0..queries.len() {
        let q = queries.row(qi);
        let truth = data.linear_scan(q, tau);
        let got = engine.search(q, tau);
        truth_total += truth.len();
        found += got.len(); // exact-verified subset of truth
    }
    if truth_total == 0 {
        1.0
    } else {
        found as f64 / truth_total as f64
    }
}

/// GPH wrapped as a [`SearchIndex`] for uniform comparison.
pub struct GphEngine {
    engine: Gph,
}

impl GphEngine {
    /// Builds GPH with the paper defaults (DP allocation, SP estimation,
    /// GR partitioning over the given workload).
    pub fn build_default(
        data: Dataset,
        m: usize,
        tau_max: usize,
        workload: &Dataset,
        taus: Vec<u32>,
    ) -> Self {
        let mut cfg = GphConfig::new(m, tau_max);
        cfg.workload = Some(WorkloadSpec::new(workload.clone(), taus));
        cfg.strategy = PartitionStrategy::Heuristic(HeuristicConfig::default());
        Self::build_with(data, cfg)
    }

    /// Builds from an explicit config.
    pub fn build_with(data: Dataset, cfg: GphConfig) -> Self {
        let engine = Gph::build(data, &cfg).expect("GPH build failed");
        GphEngine { engine }
    }

    /// The inner engine (for stats-rich calls).
    pub fn inner(&self) -> &Gph {
        &self.engine
    }
}

impl SearchIndex for GphEngine {
    fn name(&self) -> &'static str {
        "GPH"
    }

    fn search_with_stats(&self, query: &[u64], tau: u32) -> (Vec<u32>, CandidateStats) {
        let res = self.engine.search_with_stats(query, tau);
        let st = CandidateStats {
            n_signatures: res.stats.n_signatures,
            sum_postings: res.stats.sum_postings,
            n_candidates: res.stats.n_candidates,
            n_results: res.stats.n_results,
        };
        (res.ids, st)
    }

    fn size_bytes(&self) -> usize {
        self.engine.size_bytes()
    }
}

/// Standard GPH configs used across experiments.
pub fn gph_config_for(dim: usize, tau_max: usize) -> GphConfig {
    let mut cfg = GphConfig::new(GphConfig::suggested_m(dim), tau_max);
    cfg.allocator = AllocatorKind::Dp;
    cfg.estimator = EstimatorKind::SubPartition { sub_count: 2, paper_shift: false };
    cfg
}

/// Picks MIH's fastest `m` among candidates on a query sample (the paper
/// "chose the fastest m setting on each dataset").
pub fn mih_best_m(data: &Dataset, queries: &Dataset, tau_mid: u32, candidates: &[usize]) -> usize {
    let probe = queries.len().min(8);
    let mut best = (f64::INFINITY, candidates[0]);
    for &m in candidates {
        if m == 0 || m > data.dim() {
            continue;
        }
        let mih = baselines::Mih::build(data.clone(), m).expect("valid m");
        let t = Instant::now();
        for qi in 0..probe {
            let _ = mih.search(queries.row(qi), tau_mid);
        }
        let el = t.elapsed().as_secs_f64();
        if el < best.0 {
            best = (el, m);
        }
    }
    best.1
}

/// Markdown table writer (prints to stdout).
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Adds one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Prints the table as markdown.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let padded: Vec<String> =
                cells.iter().zip(&widths).map(|(c, w)| format!("{c:<w$}")).collect();
            format!("| {} |", padded.join(" | "))
        };
        println!("{}", fmt_row(&self.header));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        println!("{}", fmt_row(&sep));
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
        println!();
    }
}

/// Two-significant-digit milliseconds.
pub fn ms(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

/// Thousands-grouped integer-ish count.
pub fn count(v: f64) -> String {
    format!("{:.0}", v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_and_rows() {
        assert_eq!(Scale::parse("tiny").unwrap().base_rows, 3_000);
        assert!(Scale::parse("nope").is_none());
        let s = Scale::small();
        assert_eq!(s.rows_for(128), 20_000);
        assert_eq!(s.rows_for(881), 10_000);
    }

    #[test]
    fn tau_sweeps_match_paper_ranges() {
        assert_eq!(tau_sweep("sift-like").last(), Some(&32));
        assert_eq!(tau_sweep("gist-like").last(), Some(&64));
        assert_eq!(tau_sweep("fasttext-like").last(), Some(&20));
    }

    #[test]
    fn prepare_and_time_roundtrip() {
        let profile = Profile::uniform(32);
        let qs = prepare(&profile, Scale { base_rows: 300, n_queries: 5, n_workload: 5 }, 1);
        assert_eq!(qs.queries.len(), 5);
        let scan = baselines::LinearScan::build(qs.data.clone());
        let t = time_queries(&scan, &qs.queries, 3);
        assert!(t.mean_ms >= 0.0);
        assert!(t.mean_candidates > 0.0);
    }

    #[test]
    fn gph_engine_adapter_agrees_with_scan() {
        let profile = Profile::uniform(32);
        let qs = prepare(&profile, Scale { base_rows: 400, n_queries: 4, n_workload: 4 }, 2);
        let mut cfg = gph_config_for(32, 6);
        cfg.m = 2;
        cfg.strategy = PartitionStrategy::Original;
        let g = GphEngine::build_with(qs.data.clone(), cfg);
        for qi in 0..qs.queries.len() {
            let q = qs.queries.row(qi);
            assert_eq!(g.search(q, 5), qs.data.linear_scan(q, 5));
        }
    }

    #[test]
    fn table_prints_without_panic() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.print();
    }
}

//! Microbenchmark: Hamming-ball signature enumeration (the C_sig_gen term
//! of the paper's cost model).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hamming_core::enumerate::for_each_in_ball_u64;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("signature_enumeration");
    for (width, radius) in [(16usize, 2usize), (16, 4), (32, 3), (24, 4)] {
        group.bench_function(format!("w{width}_r{radius}"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for_each_in_ball_u64(black_box(0xABCDu64), width, radius, |v| acc ^= v);
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Build-time benchmark: inverted index and variant index construction
//! (the Table IV decomposition, criterion-sized).

use baselines::{HmSearch, PartAlloc, SearchIndex};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use datagen::Profile;
use hamming_core::project::{ProjectedDataset, Projector};
use hamming_core::{InvertedIndex, Partitioning};

fn bench(c: &mut Criterion) {
    let profile = Profile::sift_like();
    let ds = profile.generate(8_000, 31);
    let p = Partitioning::equi_width(profile.dim, 8).unwrap();
    let projector = Projector::new(&p);
    let mut group = c.benchmark_group("index_build_8k");
    group.sample_size(10);
    group.bench_function("project+invert", |b| {
        b.iter(|| {
            let pd = ProjectedDataset::build(black_box(&ds), &projector);
            InvertedIndex::build(&pd).len()
        })
    });
    group.bench_function("hmsearch_tau8", |b| {
        b.iter(|| HmSearch::build(black_box(ds.clone()), 8).unwrap().size_bytes())
    });
    group.bench_function("partalloc_tau8", |b| {
        b.iter(|| PartAlloc::build(black_box(ds.clone()), 8).unwrap().size_bytes())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

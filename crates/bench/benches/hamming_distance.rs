//! Microbenchmark: Hamming distance kernels (full vs early-exit) across
//! the paper's dimensionalities.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use datagen::Profile;
use hamming_core::distance::{hamming, hamming_within};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("hamming_distance");
    for (name, dim) in [("sift128", 128), ("gist256", 256), ("pubchem881", 881)] {
        let ds = Profile::uniform(dim).generate(1024, 7);
        let q = ds.row(0).to_vec();
        group.bench_function(format!("{name}/full_scan_1k"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for row in ds.iter_rows() {
                    acc += hamming(black_box(row), black_box(&q)) as u64;
                }
                acc
            })
        });
        group.bench_function(format!("{name}/early_exit_1k_tau8"), |b| {
            b.iter(|| {
                let mut hits = 0u64;
                for row in ds.iter_rows() {
                    if hamming_within(black_box(row), black_box(&q), 8).is_some() {
                        hits += 1;
                    }
                }
                hits
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

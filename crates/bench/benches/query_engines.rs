//! End-to-end query benchmark: GPH vs MIH vs HmSearch vs PartAlloc on a
//! medium-skew dataset (the Fig. 7 comparison, criterion-sized).

use baselines::{HmSearch, Mih, PartAlloc, SearchIndex};
use bench::util::gph_config_for;
use bench::GphEngine;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use datagen::Profile;
use gph::partition_opt::{PartitionStrategy, WorkloadSpec};

fn bench(c: &mut Criterion) {
    let profile = Profile::gist_like();
    let ds = profile.generate(8_000, 11);
    let queries = profile.generate(16, 12);
    let tau = 16u32;

    let mut cfg = gph_config_for(profile.dim, tau as usize);
    cfg.strategy = PartitionStrategy::default();
    cfg.workload = Some(WorkloadSpec::new(profile.generate(30, 13), vec![8, tau]));
    let gph_engine = GphEngine::build_with(ds.clone(), cfg);
    let mih = Mih::build(ds.clone(), Mih::suggested_m(profile.dim, ds.len())).unwrap();
    let hm = HmSearch::build(ds.clone(), tau).unwrap();
    let pa = PartAlloc::build(ds.clone(), tau).unwrap();

    let engines: [(&str, &dyn SearchIndex); 4] =
        [("gph", &gph_engine), ("mih", &mih), ("hmsearch", &hm), ("partalloc", &pa)];
    let mut group = c.benchmark_group("query_gist_tau16");
    for (name, engine) in engines {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut total = 0usize;
                for qi in 0..queries.len() {
                    total += engine.search(black_box(queries.row(qi)), tau).len();
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Microbenchmark: Algorithm 1 (DP threshold allocation) at the paper's
//! partition counts and thresholds, against round robin.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gph::alloc::{allocate_dp, allocate_round_robin};
use gph::cn::{CnEstimator, CnTable};

struct Synth;
impl CnEstimator for Synth {
    fn fill(&self, part: usize, _q: &[u64], tau: usize, out: &mut [f64]) {
        let mut acc = 0.0;
        out[0] = 0.0;
        for e in 0..=tau {
            acc += ((part * 31 + e * 7) % 97) as f64;
            out[e + 1] = acc;
        }
    }
    fn size_bytes(&self) -> usize {
        0
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("threshold_allocation");
    for (m, tau) in [(6usize, 32u32), (16, 64), (36, 32)] {
        let q: Vec<Vec<u64>> = vec![vec![0u64]; m];
        let cn = CnTable::compute(&Synth, &q, tau as usize);
        group.bench_function(format!("dp_m{m}_tau{tau}"), |b| {
            b.iter(|| allocate_dp(black_box(&cn), black_box(tau)))
        });
        group.bench_function(format!("rr_m{m}_tau{tau}"), |b| {
            b.iter(|| allocate_round_robin(black_box(m), black_box(tau)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

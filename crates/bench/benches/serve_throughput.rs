//! Serving-layer throughput: batched QPS through the sharded
//! scatter-gather service at S ∈ {1, 2, 4} shards, plus the cache-hit
//! fast path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use datagen::Profile;
use gph::engine::GphConfig;
use gph::partition_opt::{PartitionStrategy, WorkloadSpec};
use gph_serve::{QueryService, ServiceConfig, ShardedIndex};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let profile = Profile::gist_like();
    let ds = profile.generate(8_000, 21);
    let queries = profile.generate(32, 22);
    let qrefs: Vec<&[u64]> = (0..queries.len()).map(|i| queries.row(i)).collect();
    let tau = 12u32;

    let mut cfg = GphConfig::new(GphConfig::suggested_m(profile.dim), tau as usize);
    cfg.strategy = PartitionStrategy::default();
    cfg.workload = Some(WorkloadSpec::new(profile.generate(30, 23), vec![8, tau]));

    let mut group = c.benchmark_group("serve_batch_qps");
    group.sample_size(10);
    for n_shards in [1usize, 2, 4] {
        let index = Arc::new(ShardedIndex::build(&ds, n_shards, &cfg).expect("build shards"));
        // Cache off so every batch exercises the scatter-gather path.
        let service = QueryService::new(
            Arc::clone(&index),
            ServiceConfig { workers: 2, cache_capacity: 0, ..ServiceConfig::default() },
        );
        group.bench_function(format!("shards_{n_shards}"), |b| {
            b.iter(|| {
                let responses = service.submit_batch(black_box(&qrefs), tau).wait();
                responses.iter().map(|r| r.ids().map_or(0, <[u32]>::len)).sum::<usize>()
            })
        });
    }
    group.finish();

    // The cache-hit path: same batch repeatedly, everything resident.
    let index = Arc::new(ShardedIndex::build(&ds, 2, &cfg).expect("build shards"));
    let service = QueryService::new(
        Arc::clone(&index),
        ServiceConfig { workers: 2, cache_capacity: 256, ..ServiceConfig::default() },
    );
    let _warm = service.submit_batch(&qrefs, tau).wait();
    c.bench_function("serve_batch_cache_hot", |b| {
        b.iter(|| {
            let responses = service.submit_batch(black_box(&qrefs), tau).wait();
            responses.iter().filter(|r| r.from_cache).count()
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

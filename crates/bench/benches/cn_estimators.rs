//! Microbenchmark: CN estimator fill() latency (the per-query cost the
//! DP allocator pays), per estimator kind.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use datagen::Profile;
use gph::cn::learned::{LearnedParams, ModelKind};
use gph::cn::{build_estimator, EstimatorKind};
use hamming_core::project::{ProjectedDataset, Projector};
use hamming_core::Partitioning;

fn bench(c: &mut Criterion) {
    let profile = Profile::gist_like();
    let ds = profile.generate(4_000, 21);
    let p = Partitioning::equi_width(profile.dim, 16).unwrap();
    let projector = Projector::new(&p);
    let pd = ProjectedDataset::build(&ds, &projector);
    let tau = 32usize;
    let kinds: Vec<(&str, EstimatorKind)> = vec![
        ("exact", EstimatorKind::Exact { max_width: 16 }),
        ("sp2", EstimatorKind::SubPartition { sub_count: 2, paper_shift: false }),
        (
            "svm",
            EstimatorKind::Learned(LearnedParams {
                model: ModelKind::Svm,
                n_train: 100,
                ..Default::default()
            }),
        ),
        ("scan2k", EstimatorKind::SampleScan { sample_cap: 2_000, seed: 3 }),
    ];
    let q = ds.row(1).to_vec();
    let qp = projector.project(0, &q);
    let mut group = c.benchmark_group("cn_fill_one_partition");
    for (name, kind) in kinds {
        let est = build_estimator(&kind, &pd, tau).unwrap();
        let mut out = vec![0.0; tau + 2];
        group.bench_function(name, |b| {
            b.iter(|| est.fill(black_box(0), black_box(&qp), tau, &mut out))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Offline mini benchmark harness exposing the subset of the `criterion`
//! API this workspace's benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::sample_size`],
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is calibrated to ~50 ms
//! per sample, warmed up, then timed for `sample_size` samples; the
//! minimum, median, and mean per-iteration times are printed. No
//! statistics beyond that, no plots, no saved baselines — enough to
//! compare hot paths locally while staying dependency-free.

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion's optimizer barrier.
pub use std::hint::black_box;

/// Target wall-clock duration for one measurement sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(50);
/// Warm-up budget per benchmark.
const WARM_UP: Duration = Duration::from_millis(200);

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Begin a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), sample_size: 20 }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group(String::new());
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measurement samples (default 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Measure `f` under the group's configuration.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = if self.name.is_empty() { id } else { format!("{}/{}", self.name, id) };

        // Calibration: find an iteration count filling ~TARGET_SAMPLE.
        let mut iters = 1u64;
        loop {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            if b.elapsed >= TARGET_SAMPLE || iters >= 1 << 40 {
                break;
            }
            let grow = if b.elapsed.is_zero() {
                100
            } else {
                (TARGET_SAMPLE.as_nanos() / b.elapsed.as_nanos().max(1) + 1) as u64
            };
            iters = iters.saturating_mul(grow.clamp(2, 100));
        }

        // Warm-up.
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARM_UP {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
        }

        // Measurement.
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            per_iter.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{label:<48} min {:>12}  median {:>12}  mean {:>12}  ({} samples x {iters} iters)",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
            per_iter.len(),
        );
        self
    }

    /// End the group (prints nothing; provided for API compatibility).
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `routine`, keeping results alive via
    /// [`black_box`].
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit a `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_prints() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
    }
}

//! Offline shim for the subset of the `rand` 0.9 API used by this
//! workspace. The container this repo builds in has no access to a crates
//! registry, so the workspace vendors the handful of external APIs it
//! needs as small, dependency-free crates under `vendor/`. Swapping the
//! real `rand` back in is a one-line change in the root `Cargo.toml`.
//!
//! Provided surface:
//!
//! * [`RngCore`] / [`SeedableRng`] (with the `seed_from_u64` SplitMix64
//!   expansion matching upstream's default method semantics).
//! * [`Rng`] with `random`, `random_bool`, `random_range`, blanket-implemented
//!   for every `RngCore`.
//! * [`seq::SliceRandom`] (`shuffle`, `choose`) and [`seq::index::sample`].

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// Seed type, typically a byte array.
    type Seed: Default + AsMut<[u8]>;

    /// Create a new instance from the full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Create a new instance from a `u64` seed, expanded with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (Steele et al.), the same expansion rand uses.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from their full value range (or
/// `[0, 1)` for floats), mirroring rand's `StandardUniform` distribution.
pub trait StandardUniform: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl StandardUniform for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64);

/// Ranges that `Rng::random_range` accepts.
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as StandardUniform>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// User-facing convenience methods, blanket-implemented for all RNGs.
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Return `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        <f64 as StandardUniform>::sample_standard(self) < p
    }

    /// Sample uniformly from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence-related helpers (`shuffle`, `choose`, index sampling).

    use super::{Rng, RngCore};

    /// Slice extension trait: random reordering and selection.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly random element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }

    pub mod index {
        //! Sampling of distinct indices from `0..length`.

        use super::super::{Rng, RngCore};

        /// A set of distinct indices sampled without replacement.
        #[derive(Clone, Debug)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }
            /// True if no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
            /// Iterate the sampled indices.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }
            /// Convert into a plain vector of indices.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Sample `amount` distinct indices from `0..length`, uniformly,
        /// by partial Fisher–Yates (O(length) memory, O(amount) swaps).
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(amount <= length, "cannot sample {amount} distinct indices from 0..{length}");
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.random_range(i..length);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Lcg(7);
        for _ in 0..1000 {
            let a: usize = rng.random_range(3..10);
            assert!((3..10).contains(&a));
            let b: i32 = rng.random_range(-4..=4);
            assert!((-4..=4).contains(&b));
            let c: f64 = rng.random_range(0.25..0.5);
            assert!((0.25..0.5).contains(&c));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn sample_is_distinct_and_in_range() {
        let mut rng = Lcg(11);
        let got = seq::index::sample(&mut rng, 50, 20).into_vec();
        assert_eq!(got.len(), 20);
        let mut sorted = got.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        assert!(got.iter().all(|&i| i < 50));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Lcg(13);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}

//! Offline mini property-testing harness exposing the subset of the
//! `proptest` API this workspace's tests use. The container has no
//! registry access, so this crate stands in for upstream `proptest`;
//! swapping the real crate back in is a one-line root-manifest change.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its inputs (via the
//!   deterministic case seed) but is not minimized.
//! * **Deterministic runs.** Each test derives its RNG seed from the
//!   test name, so failures reproduce exactly across runs and machines.
//! * Strategies are sampled afresh per case; rejection (via
//!   `prop_assume!` / `prop_filter_map`) retries the whole case up to
//!   [`ProptestConfig::max_global_rejects`].
//!
//! Provided: [`Strategy`] (`prop_map`, `prop_flat_map`, `prop_filter`,
//! `prop_filter_map`), range and tuple strategies, [`collection::vec`],
//! [`sample::Index`], [`any`], [`ProptestConfig`], and the [`proptest!`],
//! [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//! [`prop_assume!`] macros.

use std::fmt;

/// Marker returned by a strategy that rejected the current sample.
#[derive(Clone, Debug)]
pub struct Reject(pub &'static str);

/// Outcome of running one test-case body.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case asked to be discarded (`prop_assume!` failed).
    Reject(String),
    /// An assertion failed; the message explains which.
    Fail(String),
}

/// Runner configuration, settable per-block with
/// `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required to pass.
    pub cases: u32,
    /// Total rejected samples tolerated before the test errors out.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the heavyweight engine
        // equivalence properties fast in debug builds while still
        // exercising thousands of sampled values per run.
        Self { cases: 64, max_global_rejects: 65_536 }
    }
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases, ..Self::default() }
    }
}

pub mod test_runner {
    //! The deterministic RNG driving strategy sampling.

    /// SplitMix64 generator: tiny, full-period, and plenty for test-input
    /// generation.
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seed deterministically from a test identifier.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name keeps seeds stable across runs.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self(h)
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// A generator of test-case values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Sample one value, or reject the attempt.
    fn gen(&self, rng: &mut TestRng) -> Result<Self::Value, Reject>;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy built from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Discard values failing the predicate.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, whence, f }
    }

    /// Transform values, discarding those mapped to `None`.
    fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
        self,
        whence: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap { inner: self, whence, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen(&self, rng: &mut TestRng) -> Result<O, Reject> {
        Ok((self.f)(self.inner.gen(rng)?))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn gen(&self, rng: &mut TestRng) -> Result<T::Value, Reject> {
        (self.f)(self.inner.gen(rng)?).gen(rng)
    }
}

/// Strategy produced by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn gen(&self, rng: &mut TestRng) -> Result<S::Value, Reject> {
        let v = self.inner.gen(rng)?;
        if (self.f)(&v) {
            Ok(v)
        } else {
            Err(Reject(self.whence))
        }
    }
}

/// Strategy produced by [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn gen(&self, rng: &mut TestRng) -> Result<O, Reject> {
        (self.f)(self.inner.gen(rng)?).ok_or(Reject(self.whence))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen(&self, _rng: &mut TestRng) -> Result<T, Reject> {
        Ok(self.0.clone())
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> Result<$t, Reject> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                Ok((self.start as i128 + v) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> Result<$t, Reject> {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128;
                Ok((start as i128 + v) as $t)
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn gen(&self, rng: &mut TestRng) -> Result<f64, Reject> {
        assert!(self.start < self.end, "empty range strategy");
        Ok(self.start + rng.unit_f64() * (self.end - self.start))
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn gen(&self, rng: &mut TestRng) -> Result<f32, Reject> {
        assert!(self.start < self.end, "empty range strategy");
        Ok(self.start + rng.unit_f64() as f32 * (self.end - self.start))
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen(&self, rng: &mut TestRng) -> Result<Self::Value, Reject> {
                Ok(($(self.$idx.gen(rng)?,)+))
            }
        }
    )*};
}
impl_tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3), (A.0, B.1, C.2, D.3, E.4),);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The full-range strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for the full value range of a primitive type.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyPrimitive<T>(core::marker::PhantomData<T>);

macro_rules! impl_arbitrary_prim {
    ($($t:ty => |$rng:ident| $expr:expr),* $(,)?) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn gen(&self, $rng: &mut TestRng) -> Result<$t, Reject> {
                Ok($expr)
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(core::marker::PhantomData)
            }
        }
    )*};
}
impl_arbitrary_prim!(
    bool => |rng| rng.next_u64() & 1 == 1,
    u8 => |rng| rng.next_u64() as u8,
    u16 => |rng| rng.next_u64() as u16,
    u32 => |rng| rng.next_u64() as u32,
    u64 => |rng| rng.next_u64(),
    usize => |rng| rng.next_u64() as usize,
    i8 => |rng| rng.next_u64() as i8,
    i16 => |rng| rng.next_u64() as i16,
    i32 => |rng| rng.next_u64() as i32,
    i64 => |rng| rng.next_u64() as i64,
    isize => |rng| rng.next_u64() as isize,
    f64 => |rng| rng.unit_f64(),
);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod collection {
    //! Strategies for collections.

    use super::{Reject, Strategy, TestRng};

    /// Length specifications accepted by [`vec()`]: a fixed `usize` or a
    /// half-open/inclusive range of lengths.
    pub trait SizeRange {
        /// Sample a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start() <= self.end(), "empty size range");
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    /// Strategy yielding `Vec`s of values from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// A vector whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn gen(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, Reject> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.gen(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling helper types.

    use super::{Arbitrary, Reject, Strategy, TestRng};

    /// An index into a collection whose length is only known inside the
    /// test body; scale with [`Index::index`].
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Map onto `0..len`. Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    /// Strategy for [`Index`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct IndexStrategy;

    impl Strategy for IndexStrategy {
        type Value = Index;
        fn gen(&self, rng: &mut TestRng) -> Result<Index, Reject> {
            Ok(Index(rng.next_u64()))
        }
    }

    impl Arbitrary for Index {
        type Strategy = IndexStrategy;
        fn arbitrary() -> Self::Strategy {
            IndexStrategy
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(why) => write!(f, "rejected: {why}"),
            TestCaseError::Fail(why) => write!(f, "failed: {why}"),
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    pub mod prop {
        //! The `prop::` module alias tree from upstream's prelude.
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Define property tests. Mirrors upstream's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u32..10, v in prop::collection::vec(any::<bool>(), 4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                let mut ok: u32 = 0;
                let mut rejected: u32 = 0;
                while ok < cfg.cases {
                    let sampled = (|| -> ::core::result::Result<_, $crate::Reject> {
                        Ok(($($crate::Strategy::gen(&($strat), &mut rng)?,)+))
                    })();
                    let ($($arg,)+) = match sampled {
                        Ok(v) => v,
                        Err(_) => {
                            rejected += 1;
                            assert!(
                                rejected <= cfg.max_global_rejects,
                                "proptest '{}': gave up after {} rejected samples ({} cases passed)",
                                stringify!($name), rejected, ok
                            );
                            continue;
                        }
                    };
                    let outcome = (move || -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => ok += 1,
                        Err($crate::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            assert!(
                                rejected <= cfg.max_global_rejects,
                                "proptest '{}': gave up after {} rejected samples ({} cases passed)",
                                stringify!($name), rejected, ok
                            );
                        }
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest '{}' {} (after {} passing cases)",
                                stringify!($name), msg, ok
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Assert inside a `proptest!` body; failure reports the case instead of
/// unwinding through the harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), l, r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
            stringify!($lhs), stringify!($rhs), l, r, format!($($fmt)*)
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            l
        );
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(
            x in 3u32..10,
            y in -2i32..=2,
            v in prop::collection::vec(any::<bool>(), 2..6),
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2..=2).contains(&y));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(idx.index(7) < 7);
        }

        #[test]
        fn combinators_compose(
            pair in (1usize..4, 0u32..5).prop_flat_map(|(m, t)| {
                prop::collection::vec(0u32..=t, m).prop_map(move |v| (m, t, v))
            }),
        ) {
            let (m, t, v) = pair;
            prop_assert_eq!(v.len(), m);
            prop_assert!(v.iter().all(|&e| e <= t));
        }

        #[test]
        fn assume_rejects_and_retries(a in 0u32..100) {
            prop_assume!(a % 2 == 0);
            prop_assert!(a % 2 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_header_parses(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn filter_map_rejects_none() {
        use crate::test_runner::TestRng;
        use crate::Strategy;
        let strat = (0u32..10).prop_filter_map("odd", |x| (x % 2 == 0).then_some(x));
        let mut rng = TestRng::from_name("filter_map");
        let mut evens = 0;
        for _ in 0..100 {
            if let Ok(v) = strat.gen(&mut rng) {
                assert_eq!(v % 2, 0);
                evens += 1;
            }
        }
        assert!(evens > 20);
    }
}

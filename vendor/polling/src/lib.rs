//! Offline shim for readiness-driven I/O: a thin, safe wrapper over
//! `poll(2)` and a `pipe(2)`-based waker, which is all an event-loop TCP
//! server needs. The build container has no registry access, so instead
//! of `mio`/`polling` from crates.io this crate declares the three
//! syscalls it needs directly (the process already links libc through
//! `std`).
//!
//! Unix only. The API is deliberately tiny:
//!
//! * [`PollFd`] + [`poll`] — level-triggered readiness over a slice of
//!   file descriptors, `EINTR` retried internally.
//! * [`WakePipe`] — a self-pipe: any thread calls [`WakePipe::wake`],
//!   the event loop polls [`WakePipe::read_fd`] and calls
//!   [`WakePipe::drain`] when it fires. Both ends are nonblocking, so a
//!   full pipe never blocks a waker (the loop is already signalled).
//! * [`raise_nofile_limit`] — best-effort bump of `RLIMIT_NOFILE`, for
//!   tests and benches that hold thousands of sockets.

#![warn(missing_docs)]

use std::io;
use std::os::unix::io::RawFd;

/// Readable readiness (data available, EOF included).
pub const POLLIN: i16 = 0x001;
/// Writable readiness (a write would accept bytes).
pub const POLLOUT: i16 = 0x004;
/// Error condition (revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// Fd not open (revents only).
pub const POLLNVAL: i16 = 0x020;

/// One entry of a [`poll`] set, layout-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// The file descriptor to watch (negative entries are ignored by the
    /// kernel, which is the standard way to tombstone a slot).
    pub fd: RawFd,
    /// Requested events ([`POLLIN`] | [`POLLOUT`]).
    pub events: i16,
    /// Returned events; the kernel may add [`POLLERR`]/[`POLLHUP`]/
    /// [`POLLNVAL`] regardless of `events`.
    pub revents: i16,
}

impl PollFd {
    /// A watch entry for `fd` with the given interest and clear
    /// `revents`.
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd { fd, events, revents: 0 }
    }
}

mod sys {
    use std::os::unix::io::RawFd;

    pub const O_NONBLOCK: i32 = 0o4000;
    pub const O_CLOEXEC: i32 = 0o2000000;

    extern "C" {
        pub fn poll(fds: *mut super::PollFd, nfds: u64, timeout: i32) -> i32;
        pub fn pipe2(fds: *mut RawFd, flags: i32) -> i32;
        pub fn read(fd: RawFd, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: RawFd, buf: *const u8, count: usize) -> isize;
        pub fn close(fd: RawFd) -> i32;
        pub fn getrlimit(resource: i32, rlim: *mut [u64; 2]) -> i32;
        pub fn setrlimit(resource: i32, rlim: *const [u64; 2]) -> i32;
    }

    pub const RLIMIT_NOFILE: i32 = 7;
}

/// Blocks until at least one entry of `fds` is ready or `timeout_ms`
/// elapses (`-1` = wait forever, `0` = poll and return). Returns how
/// many entries have nonzero `revents`. `EINTR` is retried with the
/// same timeout, so callers never see spurious interrupts.
pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        // SAFETY: `PollFd` is repr(C) and layout-identical to the
        // kernel's `struct pollfd`; the slice's length bounds the
        // kernel's writes.
        let rc = unsafe { sys::poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// A self-pipe waker: `wake()` from any thread makes a poll over
/// [`WakePipe::read_fd`] return, and `drain()` resets it. Dropping
/// closes both ends.
#[derive(Debug)]
pub struct WakePipe {
    read_fd: RawFd,
    write_fd: RawFd,
}

// The fds are plain integers owned by the struct; the syscalls used on
// them are thread-safe.
unsafe impl Send for WakePipe {}
unsafe impl Sync for WakePipe {}

impl WakePipe {
    /// Creates the pipe with both ends nonblocking and close-on-exec.
    pub fn new() -> io::Result<WakePipe> {
        let mut fds: [RawFd; 2] = [-1, -1];
        // SAFETY: `fds` is a valid 2-slot buffer for pipe2's out-params.
        let rc = unsafe { sys::pipe2(fds.as_mut_ptr(), sys::O_NONBLOCK | sys::O_CLOEXEC) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(WakePipe { read_fd: fds[0], write_fd: fds[1] })
    }

    /// The fd the event loop should poll with [`POLLIN`].
    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// Signals the poller. Nonblocking: if the pipe is already full the
    /// loop is already pending a wake-up, so the lost byte is harmless.
    pub fn wake(&self) {
        let byte = 1u8;
        // SAFETY: one readable byte from a live local; EAGAIN/EINTR are
        // both fine to ignore per the doc comment.
        unsafe { sys::write(self.write_fd, &byte, 1) };
    }

    /// Consumes every queued wake-up byte (call after the read end polls
    /// readable).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: `buf` is a valid writable buffer of its length.
            let n = unsafe { sys::read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                return; // EAGAIN (drained), EOF, or EINTR — all done here
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        // SAFETY: the struct owns both fds and they are closed once.
        unsafe {
            sys::close(self.read_fd);
            sys::close(self.write_fd);
        }
    }
}

/// Raises the soft `RLIMIT_NOFILE` to `min(want, hard limit)` and
/// returns the resulting soft limit. Never errors harder than returning
/// the current limit — callers treat this as best-effort.
pub fn raise_nofile_limit(want: u64) -> u64 {
    let mut lim = [0u64; 2];
    // SAFETY: `lim` is a valid {soft, hard} out-buffer.
    if unsafe { sys::getrlimit(sys::RLIMIT_NOFILE, &mut lim) } != 0 {
        return 0;
    }
    let (soft, hard) = (lim[0], lim[1]);
    if want <= soft {
        return soft;
    }
    let new_soft = want.min(hard);
    let new = [new_soft, hard];
    // SAFETY: raising soft toward hard is always permitted.
    if unsafe { sys::setrlimit(sys::RLIMIT_NOFILE, &new) } == 0 {
        new_soft
    } else {
        soft
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn wake_pipe_signals_and_drains() {
        let pipe = WakePipe::new().unwrap();
        let mut fds = [PollFd::new(pipe.read_fd(), POLLIN)];
        assert_eq!(poll(&mut fds, 0).unwrap(), 0, "fresh pipe is quiet");
        pipe.wake();
        pipe.wake();
        let mut fds = [PollFd::new(pipe.read_fd(), POLLIN)];
        assert_eq!(poll(&mut fds, 1000).unwrap(), 1);
        assert!(fds[0].revents & POLLIN != 0);
        pipe.drain();
        let mut fds = [PollFd::new(pipe.read_fd(), POLLIN)];
        assert_eq!(poll(&mut fds, 0).unwrap(), 0, "drained pipe is quiet");
    }

    #[test]
    fn wake_survives_a_full_pipe() {
        let pipe = WakePipe::new().unwrap();
        for _ in 0..100_000 {
            pipe.wake(); // must never block even once the buffer fills
        }
        let mut fds = [PollFd::new(pipe.read_fd(), POLLIN)];
        assert_eq!(poll(&mut fds, 1000).unwrap(), 1);
        pipe.drain();
    }

    #[test]
    fn poll_reports_socket_readability() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut fds = [PollFd::new(server.as_raw_fd(), POLLIN)];
        assert_eq!(poll(&mut fds, 0).unwrap(), 0, "no data yet");
        client.write_all(b"hi").unwrap();
        let mut fds = [PollFd::new(server.as_raw_fd(), POLLIN)];
        assert_eq!(poll(&mut fds, 1000).unwrap(), 1);
        let mut buf = [0u8; 8];
        assert_eq!(server.read(&mut buf).unwrap(), 2);

        // Negative fd entries are ignored tombstones.
        let mut fds = [PollFd::new(-1, POLLIN), PollFd::new(server.as_raw_fd(), POLLOUT)];
        assert_eq!(poll(&mut fds, 1000).unwrap(), 1);
        assert_eq!(fds[0].revents, 0);
        assert!(fds[1].revents & POLLOUT != 0);
    }

    #[test]
    fn nofile_limit_is_queryable() {
        let soft = raise_nofile_limit(1024);
        assert!(soft >= 1024 || soft > 0);
    }
}

//! Offline shim for the subset of the `bytes` crate this workspace uses:
//! the [`Buf`] impl on `&[u8]` and the [`BufMut`] impl on `Vec<u8>`, with
//! little-endian integer accessors. Semantics (including panics on
//! under-run) match upstream for the provided methods.

/// Read access to a contiguous buffer, consuming from the front.
pub trait Buf {
    /// Bytes remaining to be read.
    fn remaining(&self) -> usize;

    /// True while unread bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Advance the read cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Borrow the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Copy `dst.len()` bytes into `dst`, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer under-run");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte, advancing.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u32`, advancing.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`, advancing.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer under-run");
        *self = &self[cnt..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Append access to a growable buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        buf.put_slice(b"HAMD");
        buf.put_u32_le(1);
        buf.put_u64_le(0xDEAD_BEEF_0123_4567);
        let mut rd: &[u8] = &buf;
        let mut magic = [0u8; 4];
        rd.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"HAMD");
        assert_eq!(rd.get_u32_le(), 1);
        assert_eq!(rd.get_u64_le(), 0xDEAD_BEEF_0123_4567);
        assert_eq!(rd.remaining(), 0);
    }
}

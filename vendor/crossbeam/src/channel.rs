//! Offline shim for `crossbeam::channel`: multi-producer multi-consumer
//! FIFO channels over `Mutex` + `Condvar`.
//!
//! The API mirrors the upstream subset this workspace uses — [`bounded`],
//! [`unbounded`], cloneable [`Sender`]/[`Receiver`], blocking
//! `send`/`recv`, the non-blocking `try_*` variants, `recv_timeout`, and
//! receiver iteration — so swapping back to the real crate stays a
//! one-line change in the root manifest. Visible deltas from upstream:
//!
//! * `bounded(0)` is a capacity-1 queue, not a rendezvous channel (no
//!   caller in this workspace relies on rendezvous hand-off);
//! * the `select!` macro and `after`/`tick` channels are not provided.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`]: every receiver was dropped. The
/// unsent message is handed back.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Sender::try_send`].
#[derive(PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity; the message is handed back.
    Full(T),
    /// Every receiver was dropped; the message is handed back.
    Disconnected(T),
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("sending on a full channel"),
            TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}

impl<T> std::error::Error for TrySendError<T> {}

/// Error returned by [`Receiver::recv`]: the channel is empty and every
/// sender was dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and every sender was dropped.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with the channel still empty.
    Timeout,
    /// The channel is empty and every sender was dropped.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on receive"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

struct Inner<T> {
    queue: VecDeque<T>,
    /// `None` for unbounded channels.
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    /// Signalled when a message is pushed or the last sender drops.
    not_empty: Condvar,
    /// Signalled when a message is popped or the last receiver drops.
    not_full: Condvar,
}

/// The sending half of a channel. Cloneable (multi-producer).
pub struct Sender<T>(Arc<Shared<T>>);

/// The receiving half of a channel. Cloneable (multi-consumer); each
/// message is delivered to exactly one receiver.
pub struct Receiver<T>(Arc<Shared<T>>);

/// Creates a FIFO channel holding at most `cap` in-flight messages;
/// `send` blocks while the queue is full. `cap == 0` is rounded up to 1
/// (see the module docs for the delta from upstream's rendezvous
/// semantics).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    new_channel(Some(cap.max(1)))
}

/// Creates a FIFO channel with no capacity bound; `send` never blocks.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    new_channel(None)
}

fn new_channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner { queue: VecDeque::new(), cap, senders: 1, receivers: 1 }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender(Arc::clone(&shared)), Receiver(shared))
}

impl<T> Sender<T> {
    /// Blocks until the message is enqueued, or fails if every receiver
    /// has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut inner = self.0.inner.lock().expect("channel mutex poisoned");
        loop {
            if inner.receivers == 0 {
                return Err(SendError(msg));
            }
            let full = inner.cap.is_some_and(|c| inner.queue.len() >= c);
            if !full {
                inner.queue.push_back(msg);
                self.0.not_empty.notify_one();
                return Ok(());
            }
            inner = self.0.not_full.wait(inner).expect("channel mutex poisoned");
        }
    }

    /// Enqueues without blocking, failing on a full or disconnected
    /// channel.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.0.inner.lock().expect("channel mutex poisoned");
        if inner.receivers == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if inner.cap.is_some_and(|c| inner.queue.len() >= c) {
            return Err(TrySendError::Full(msg));
        }
        inner.queue.push_back(msg);
        self.0.not_empty.notify_one();
        Ok(())
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.0.inner.lock().expect("channel mutex poisoned").queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives, or fails once the channel is empty
    /// and every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.0.inner.lock().expect("channel mutex poisoned");
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                self.0.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.0.not_empty.wait(inner).expect("channel mutex poisoned");
        }
    }

    /// Dequeues without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.0.inner.lock().expect("channel mutex poisoned");
        match inner.queue.pop_front() {
            Some(msg) => {
                self.0.not_full.notify_one();
                Ok(msg)
            }
            None if inner.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Blocks up to `timeout` for a message.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.0.inner.lock().expect("channel mutex poisoned");
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                self.0.not_full.notify_one();
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) = self
                .0
                .not_empty
                .wait_timeout(inner, deadline - now)
                .expect("channel mutex poisoned");
            inner = guard;
        }
    }

    /// Blocking iterator: yields until the channel disconnects.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }

    /// Non-blocking iterator: yields the messages currently queued.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { rx: self }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.0.inner.lock().expect("channel mutex poisoned").queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.inner.lock().expect("channel mutex poisoned").senders += 1;
        Sender(Arc::clone(&self.0))
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.0.inner.lock().expect("channel mutex poisoned").receivers += 1;
        Receiver(Arc::clone(&self.0))
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.0.inner.lock().expect("channel mutex poisoned");
        inner.senders -= 1;
        if inner.senders == 0 {
            // Wake blocked receivers so they observe the disconnect.
            self.0.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.0.inner.lock().expect("channel mutex poisoned");
        inner.receivers -= 1;
        if inner.receivers == 0 {
            // Wake blocked senders so they observe the disconnect.
            self.0.not_full.notify_all();
        }
    }
}

/// Blocking iterator over received messages (see [`Receiver::iter`]).
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

/// Non-blocking iterator over queued messages (see [`Receiver::try_iter`]).
pub struct TryIter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.rx.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_order_single_thread() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 4);
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert!(rx.is_empty());
    }

    #[test]
    fn try_send_reports_full_then_drains() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.try_recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn recv_fails_after_all_senders_drop() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = bounded::<u32>(2);
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
        assert!(matches!(tx.try_send(2), Err(TrySendError::Disconnected(2))));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = bounded(1);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
    }

    #[test]
    fn bounded_send_blocks_until_capacity_frees() {
        let (tx, rx) = bounded(1);
        tx.send(0u32).unwrap();
        let sender = thread::spawn(move || {
            tx.send(1).unwrap(); // blocks until the main thread pops
            tx.send(2).unwrap();
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(0));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        sender.join().unwrap();
    }

    #[test]
    fn mpmc_delivers_every_message_exactly_once() {
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 3;
        const PER_PRODUCER: u64 = 500;
        let (tx, rx) = bounded::<u64>(8);
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        tx.send(p as u64 * PER_PRODUCER + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || rx.iter().collect::<Vec<u64>>())
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut got: Vec<u64> = Vec::new();
        for c in consumers {
            got.extend(c.join().unwrap());
        }
        got.sort_unstable();
        let expect: Vec<u64> = (0..PRODUCERS as u64 * PER_PRODUCER).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn unbounded_never_blocks_sender() {
        let (tx, rx) = unbounded();
        for i in 0..10_000u32 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 10_000);
        assert_eq!(rx.try_iter().count(), 10_000);
    }
}

//! Offline shim for the `crossbeam::thread::scope` and
//! `crossbeam::channel` APIs, implemented over the std primitives
//! (`std::thread::scope`, `Mutex` + `Condvar`). The visible differences
//! from upstream: a panic in an unjoined child thread aborts via std's
//! scope unwinding rather than being collected into the returned
//! `Result` — this workspace joins every handle, so the distinction
//! never surfaces — and `channel::bounded(0)` is a capacity-1 queue
//! rather than a rendezvous channel (see the module docs).

pub mod channel;

pub mod thread {
    //! Scoped threads with crossbeam's closure signature
    //! (`scope.spawn(|scope| ...)`).

    use std::any::Any;

    /// Error type carried by [`Result`]: the payload of a child panic.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// Result of [`scope`] and of joining a [`ScopedJoinHandle`].
    pub type Result<T> = std::result::Result<T, PanicPayload>;

    /// A scope in which child threads may borrow from the parent stack.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the child to finish, returning its panic payload on
        /// panic.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a child thread. The closure receives the scope so it can
        /// itself spawn siblings, mirroring crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Run `f` with a scope handle; all threads it spawns are joined
    /// before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|s| {
            let handles: Vec<_> =
                data.chunks(2).map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = crate::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2).join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}

//! Offline shim for `rand_chacha`: a real ChaCha8 keystream generator
//! implementing the vendored [`rand`] shim's `RngCore`/`SeedableRng`.
//!
//! The keystream follows RFC 8439's state layout with 8 rounds (4
//! double-rounds) and a 64-bit block counter. It is a faithful ChaCha8 —
//! deterministic for a given seed and of full cryptographic quality —
//! though its stream is not bit-identical to the upstream `rand_chacha`
//! crate's word ordering; nothing in this workspace depends on that.

use rand::{RngCore, SeedableRng};

const WORDS_PER_BLOCK: usize = 16;

/// A ChaCha keystream RNG with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// 256-bit key as eight little-endian words.
    key: [u32; 8],
    /// 64-bit block counter (words 12–13 of the state).
    counter: u64,
    /// Buffered keystream block.
    buf: [u32; WORDS_PER_BLOCK],
    /// Next unconsumed word in `buf`.
    idx: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; WORDS_PER_BLOCK], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; WORDS_PER_BLOCK] = [
            // "expand 32-byte k"
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial) {
            *word = word.wrapping_add(init);
        }
        self.buf = state;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        Self { key, counter: 0, buf: [0; WORDS_PER_BLOCK], idx: WORDS_PER_BLOCK }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= WORDS_PER_BLOCK {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let same = (0..64).filter(|_| a.next_u64() == c.next_u64()).count();
        assert!(same < 4, "independent seeds should not correlate");
    }

    #[test]
    fn roughly_uniform_bits() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        // 64_000 fair coin flips: mean 32_000, sd ≈ 126. Allow ±5 sd.
        assert!((31_360..=32_640).contains(&ones), "ones={ones}");
        let p: f64 =
            (0..10_000).map(|_| rng.random_bool(0.25) as u32 as f64).sum::<f64>() / 10_000.0;
        assert!((0.22..0.28).contains(&p), "p={p}");
    }
}

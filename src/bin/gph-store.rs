//! `gph-store` — build, persist, and warm-start GPH indexes.
//!
//! The build-once / reload-many lifecycle of the snapshot subsystem:
//!
//! ```text
//! gph-store build --profile sift --rows 20000 --shards 4 --tau-max 16 --out snap/
//! gph-store build --data data.hamd --shards 4 --tau-max 16 --out snap/
//! gph-store info  --index snap/
//! gph-store query --index snap/ --queries q.hamd --tau 8 [--topk k]
//! gph-store serve --index snap/ --queries 2000 --tau 8 [--workers w]
//! gph-store add   --index snap/ --id 42 --bits 0101... [--upsert]
//! gph-store del   --index snap/ --id 42
//! ```
//!
//! `build` runs the expensive offline phase (partition optimization,
//! index + estimator construction, one engine per shard) and snapshots
//! the fleet; every other command restores from the snapshot and never
//! re-optimizes. `add` and `del` mutate the restored fleet through the
//! segmented live-update path (memtable append / tombstone flip — at
//! most one segment build when a seal triggers) and re-snapshot in
//! place.

use gph_suite::datagen::Profile;
use gph_suite::gph::engine::GphConfig;
use gph_suite::hamming_core::io;
use gph_suite::hamming_core::Dataset;
use gph_suite::serve::{read_manifest, QueryService, ServiceConfig, ShardedIndex};
use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        usage();
        return ExitCode::FAILURE;
    };
    let mut opts: HashMap<String, String> = HashMap::new();
    let mut key: Option<String> = None;
    for a in args {
        if let Some(stripped) = a.strip_prefix("--") {
            if let Some(k) = key.take() {
                opts.insert(k, "true".into()); // boolean flag
            }
            key = Some(stripped.to_string());
        } else if let Some(k) = key.take() {
            opts.insert(k, a);
        } else {
            eprintln!("unexpected argument: {a}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(k) = key.take() {
        opts.insert(k, "true".into());
    }
    let result = match cmd.as_str() {
        "build" => cmd_build(&opts),
        "info" => cmd_info(&opts),
        "query" => cmd_query(&opts),
        "serve" => cmd_serve(&opts),
        "add" => cmd_add(&opts),
        "del" => cmd_del(&opts),
        "--help" | "-h" | "help" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown command: {other}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "gph-store <command> [--opt value]...\n\
         commands:\n\
         \x20 build --out <dir> (--data <file.hamd> | --profile <name> --rows <n>)\n\
         \x20       [--shards s] [--m m] [--tau-max t] [--seed s]\n\
         \x20 info  --index <dir>\n\
         \x20 query --index <dir> --tau <t> (--queries <file.hamd> | --sample n)\n\
         \x20       [--topk k]\n\
         \x20 serve --index <dir> --queries <n> --tau <t> [--workers w] [--batch b]\n\
         \x20 add   --index <dir> --id <n> (--bits <01...> | --random-seed <s>)\n\
         \x20       [--upsert]\n\
         \x20 del   --index <dir> --id <n>\n\
         profiles: sift gist pubchem fasttext uqvideo uniform<d> gamma<g>"
    );
}

fn need<'a>(opts: &'a HashMap<String, String>, k: &str) -> Result<&'a str, String> {
    opts.get(k).map(|s| s.as_str()).ok_or_else(|| format!("missing --{k}"))
}

fn parse<T: std::str::FromStr>(opts: &HashMap<String, String>, k: &str) -> Result<T, String> {
    need(opts, k)?.parse().map_err(|_| format!("--{k} is not a valid value"))
}

fn parse_or<T: std::str::FromStr>(
    opts: &HashMap<String, String>,
    k: &str,
    default: T,
) -> Result<T, String> {
    match opts.get(k) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{k} is not a valid value")),
    }
}

fn cmd_build(opts: &HashMap<String, String>) -> Result<(), String> {
    let out = need(opts, "out")?;
    let ds: Dataset = if let Some(path) = opts.get("data") {
        io::read_dataset(path).map_err(|e| format!("reading {path}: {e}"))?
    } else {
        let name =
            need(opts, "profile").map_err(|_| "need --data or --profile/--rows".to_string())?;
        let profile = Profile::by_name(name).ok_or_else(|| format!("unknown profile {name}"))?;
        let rows: usize = parse(opts, "rows")?;
        let seed: u64 = parse_or(opts, "seed", 42)?;
        profile.generate(rows, seed)
    };
    let shards: usize = parse_or(opts, "shards", 1)?;
    let m: usize = parse_or(opts, "m", GphConfig::suggested_m(ds.dim()))?;
    let tau_max: usize = parse_or(opts, "tau-max", 16)?;
    let cfg = GphConfig::new(m, tau_max);
    let t0 = Instant::now();
    let index = ShardedIndex::build(&ds, shards, &cfg).map_err(|e| e.to_string())?;
    let build_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let manifest = index.snapshot(out).map_err(|e| e.to_string())?;
    println!(
        "built {} rows x {} dims over {} shard(s) in {build_s:.1}s \
         ({:.1} MB in memory), snapshotted to {out} in {:.2}s",
        index.len(),
        index.dim(),
        manifest.shards.len(),
        index.size_bytes() as f64 / 1e6,
        t1.elapsed().as_secs_f64(),
    );
    Ok(())
}

fn cmd_info(opts: &HashMap<String, String>) -> Result<(), String> {
    let dir = need(opts, "index")?;
    let m = read_manifest(dir).map_err(|e| e.to_string())?;
    println!("snapshot:  {dir}");
    println!("records:   {}", m.len);
    println!("dims:      {}", m.dim);
    println!("tau_max:   {}", m.tau_max);
    println!("shards:    {} requested, {} non-empty", m.n_shards, m.shards.len());
    for e in &m.shards {
        println!(
            "  slot {:>3}: {:>8} rows  {}  crc32 {:08x}",
            e.slot,
            e.rows,
            e.file_name(),
            e.crc
        );
    }
    Ok(())
}

fn restore(opts: &HashMap<String, String>) -> Result<ShardedIndex, String> {
    let dir = need(opts, "index")?;
    let t0 = Instant::now();
    let index = ShardedIndex::restore(dir).map_err(|e| e.to_string())?;
    eprintln!(
        "restored {} rows over {} shard(s) in {:.2}s (no re-optimization)",
        index.len(),
        index.num_shards(),
        t0.elapsed().as_secs_f64()
    );
    Ok(index)
}

fn cmd_query(opts: &HashMap<String, String>) -> Result<(), String> {
    let index = restore(opts)?;
    let tau: u32 = parse(opts, "tau")?;
    if tau as usize > index.tau_max() {
        return Err(format!("--tau {tau} exceeds the snapshot's tau_max {}", index.tau_max()));
    }
    let queries: Dataset = if let Some(path) = opts.get("queries") {
        io::read_dataset(path).map_err(|e| format!("reading {path}: {e}"))?
    } else {
        let n: usize = parse_or(opts, "sample", 10)?;
        Profile::uniform(index.dim()).generate(n, 0x5EED)
    };
    if queries.dim() != index.dim() {
        return Err(format!("query dim {} != index dim {}", queries.dim(), index.dim()));
    }
    let topk: usize = parse_or(opts, "topk", 0)?;
    let t0 = Instant::now();
    let mut total = 0usize;
    for qi in 0..queries.len() {
        if topk > 0 {
            let hits = index.search_topk(queries.row(qi), topk);
            total += hits.len();
            println!("query {qi}: top-{topk} {:?}", &hits[..hits.len().min(8)]);
        } else {
            let ids = index.search(queries.row(qi), tau);
            total += ids.len();
            println!("query {qi}: {} results {:?}", ids.len(), &ids[..ids.len().min(16)]);
        }
    }
    eprintln!(
        "{} queries, {total} results in {:.1} ms",
        queries.len(),
        t0.elapsed().as_secs_f64() * 1e3
    );
    Ok(())
}

fn cmd_add(opts: &HashMap<String, String>) -> Result<(), String> {
    let dir = need(opts, "index")?;
    let id: u32 = parse(opts, "id")?;
    let index = restore(opts)?;
    let row: Vec<u64> = if let Some(bits) = opts.get("bits") {
        if bits.len() != index.dim() {
            return Err(format!("--bits has {} digits, index dim is {}", bits.len(), index.dim()));
        }
        let v = gph_suite::hamming_core::BitVector::parse(bits)
            .map_err(|e| format!("parsing --bits: {e}"))?;
        v.words().to_vec()
    } else {
        let seed: u64 =
            parse(opts, "random-seed").map_err(|_| "need --bits or --random-seed".to_string())?;
        let sample = Profile::uniform(index.dim()).generate(1, seed);
        sample.row(0).to_vec()
    };
    if opts.contains_key("upsert") {
        let replaced = index.upsert(id, &row).map_err(|e| e.to_string())?;
        println!("{} id {id}", if replaced { "replaced" } else { "inserted" });
    } else {
        index.insert(id, &row).map_err(|e| e.to_string())?;
        println!("inserted id {id}");
    }
    index.snapshot(dir).map_err(|e| e.to_string())?;
    println!("{} live rows, snapshot updated at {dir}", index.len());
    Ok(())
}

fn cmd_del(opts: &HashMap<String, String>) -> Result<(), String> {
    let dir = need(opts, "index")?;
    let id: u32 = parse(opts, "id")?;
    let index = restore(opts)?;
    if !index.delete(id) {
        return Err(format!("id {id} is not live in this index"));
    }
    index.snapshot(dir).map_err(|e| e.to_string())?;
    println!("deleted id {id}; {} live rows, snapshot updated at {dir}", index.len());
    Ok(())
}

fn cmd_serve(opts: &HashMap<String, String>) -> Result<(), String> {
    let dir = need(opts, "index")?;
    let n_queries: usize = parse_or(opts, "queries", 1000)?;
    let workers: usize = parse_or(opts, "workers", 0)?;
    let batch: usize = parse_or(opts, "batch", 16)?;
    let cfg = ServiceConfig { workers, ..ServiceConfig::default() };
    let t0 = Instant::now();
    let service = QueryService::warm_start(dir, cfg).map_err(|e| e.to_string())?;
    eprintln!("service warm-started from {dir} in {:.2}s", t0.elapsed().as_secs_f64());
    let (dim, tau_max) = (service.index().dim(), service.index().tau_max());
    let tau: u32 = parse_or(opts, "tau", (tau_max / 2).max(1) as u32)?;
    if tau as usize > tau_max {
        return Err(format!("--tau {tau} exceeds the snapshot's tau_max {tau_max}"));
    }
    let queries = Profile::uniform(dim).generate(n_queries, 0xCAFE);
    let t1 = Instant::now();
    let mut tickets = Vec::new();
    for chunk_start in (0..queries.len()).step_by(batch.max(1)) {
        let chunk: Vec<&[u64]> = (chunk_start..(chunk_start + batch.max(1)).min(queries.len()))
            .map(|i| queries.row(i))
            .collect();
        tickets.push(service.submit_batch(&chunk, tau));
    }
    let mut results = 0usize;
    for t in tickets {
        for resp in t.wait() {
            results += resp.ids().map_or(0, <[u32]>::len);
        }
    }
    let elapsed = t1.elapsed().as_secs_f64();
    let st = service.stats();
    println!(
        "{n_queries} queries at tau={tau}: {results} results in {elapsed:.2}s \
         ({:.0} QPS, p50 {:.2} ms, p95 {:.2} ms, {:.0} candidates/query)",
        n_queries as f64 / elapsed,
        st.latency_p50_ns as f64 / 1e6,
        st.latency_p95_ns as f64 / 1e6,
        st.candidates_per_query,
    );
    Ok(())
}

//! `gph-store` — build, persist, and warm-start GPH indexes.
//!
//! The build-once / reload-many lifecycle of the snapshot subsystem:
//!
//! ```text
//! gph-store build --profile sift --rows 20000 --shards 4 --tau-max 16 --out snap/
//! gph-store build --data data.hamd --shards 4 --tau-max 16 --out snap/
//! gph-store info  --index snap/
//! gph-store query --index snap/ --queries q.hamd --tau 8 [--topk k] [--trace]
//! gph-store query --connect 127.0.0.1:7471 --tau 8 [--sample n] [--topk k] [--trace]
//! gph-store serve --index snap/ --queries 2000 --tau 8 [--workers w]
//! gph-store serve --index snap/ --listen 127.0.0.1:7471 [--duration secs]
//! gph-store serve --index snap/ --queries 2000 --tau 8 --memory-budget 64m
//! ```
//!
//! `serve --memory-budget` serves the snapshot **out-of-core**: sealed
//! segments stay on disk and are paged through a cache capped at the
//! given budget, so a corpus much larger than RAM still serves exact
//! results (see `FORMAT.md` for the on-disk layout that makes the lazy
//! mapping possible).
//!
//! ```text
//! gph-store stats --connect 127.0.0.1:7471
//! gph-store metrics --connect 127.0.0.1:7471
//! gph-store add   --index snap/ --id 42 --bits 0101... [--upsert]
//! gph-store del   --index snap/ --id 42
//! ```
//!
//! Fleet serving splits one corpus across node processes behind a
//! manifest server (see README § Fleet serving for the full walkthrough):
//!
//! ```text
//! gph-store build --profile sift --rows 20000 --out node0/ \
//!                 --fleet-slots 6 --owned 0,2,4
//! gph-store metastore --listen 127.0.0.1:7400
//! gph-store publish --metastore 127.0.0.1:7400 --version 1 --fleet-slots 6 \
//!                   --nodes "0,2,4@127.0.0.1:7471;1,3,5@127.0.0.1:7472"
//! gph-store manifest --metastore 127.0.0.1:7400
//! gph-store query --metastore 127.0.0.1:7400 --tau 8 --sample 5 [--topk k] [--trace]
//! gph-store metrics --metastore 127.0.0.1:7400
//! gph-store fleettop --metastore 127.0.0.1:7400 [--interval secs]
//! ```
//!
//! `build --fleet-slots/--owned` keeps only the rows whose fleet slot
//! (the same stable id-hash `FleetClient` routes by) is in the owned
//! set, under their **global** ids — so disjoint per-node snapshots
//! reassemble into exactly the single-index answer. `publish` versions
//! the shard→node map; `query --metastore` scatter-gathers across the
//! fleet with the exact top-k merge. `query --metastore --trace` merges
//! every node's hop trace into one distributed view (engine time vs
//! network + queue time per hop, straggler marked); `metrics
//! --metastore` asks the metastore to scrape and merge every node's
//! exposition (unreachable nodes report as stale); `fleettop` prints a
//! one-shot per-node health summary from two federated scrapes.
//!
//! `build` runs the expensive offline phase (partition optimization,
//! index + estimator construction, one engine per shard) and snapshots
//! the fleet; every other command restores from the snapshot and never
//! re-optimizes. `add` and `del` mutate the restored fleet through the
//! segmented live-update path (memtable append / tombstone flip — at
//! most one segment build when a seal triggers) and re-snapshot in
//! place. `serve --listen` exposes the warm-started service over TCP
//! (the `GPHN` protocol); `query --connect`, `stats --connect`, and
//! `metrics --connect` talk to such a server from any machine. `query
//! --trace` prints a per-shard, per-segment phase breakdown of each
//! query; `metrics` prints the server's Prometheus text exposition.

use gph_suite::datagen::Profile;
use gph_suite::gph::coldstore::StorageMode;
use gph_suite::gph::engine::GphConfig;
use gph_suite::hamming_core::io;
use gph_suite::hamming_core::Dataset;
use gph_suite::net::{
    FleetClient, FleetConfig, FleetManifest, FleetNode, GphClient, MetastoreServer, NetServer,
    ServerConfig,
};
use gph_suite::serve::{read_manifest, QueryService, ServiceConfig, ShardedIndex};
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        usage();
        return ExitCode::FAILURE;
    };
    let mut opts: HashMap<String, String> = HashMap::new();
    let mut key: Option<String> = None;
    for a in args {
        if let Some(stripped) = a.strip_prefix("--") {
            if let Some(k) = key.take() {
                opts.insert(k, "true".into()); // boolean flag
            }
            key = Some(stripped.to_string());
        } else if let Some(k) = key.take() {
            opts.insert(k, a);
        } else {
            eprintln!("unexpected argument: {a}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(k) = key.take() {
        opts.insert(k, "true".into());
    }
    let result = match cmd.as_str() {
        "build" => cmd_build(&opts),
        "info" => cmd_info(&opts),
        "query" => cmd_query(&opts),
        "serve" => cmd_serve(&opts),
        "stats" => cmd_stats(&opts),
        "metrics" => cmd_metrics(&opts),
        "add" => cmd_add(&opts),
        "del" => cmd_del(&opts),
        "metastore" => cmd_metastore(&opts),
        "fleettop" => cmd_fleettop(&opts),
        "publish" => cmd_publish(&opts),
        "manifest" => cmd_manifest(&opts),
        "--help" | "-h" | "help" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown command: {other}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "gph-store <command> [--opt value]...\n\
         commands:\n\
         \x20 build --out <dir> (--data <file.hamd> | --profile <name> --rows <n>)\n\
         \x20       [--shards s] [--m m] [--tau-max t] [--seed s]\n\
         \x20       [--fleet-slots n --owned <slot,slot,...>]\n\
         \x20 info  --index <dir>\n\
         \x20 query (--index <dir> | --connect <addr> | --metastore <addr>) --tau <t>\n\
         \x20       [--queries <file.hamd> | --sample n] [--topk k] [--trace]\n\
         \x20 serve --index <dir> --queries <n> --tau <t> [--workers w] [--batch b]\n\
         \x20       [--memory-budget <bytes|Nk|Nm|Ng>]\n\
         \x20 serve --index <dir> --listen <addr> [--workers w] [--duration secs]\n\
         \x20       [--memory-budget <bytes|Nk|Nm|Ng>]\n\
         \x20 stats --connect <addr>\n\
         \x20 metrics (--connect <addr> | --metastore <addr>)\n\
         \x20 fleettop --metastore <addr> [--interval secs]\n\
         \x20 add   --index <dir> --id <n> (--bits <01...> | --random-seed <s>)\n\
         \x20       [--upsert]\n\
         \x20 del   --index <dir> --id <n>\n\
         \x20 metastore --listen <addr> [--duration secs]\n\
         \x20 publish --metastore <addr> --version <v> --fleet-slots <n>\n\
         \x20       --nodes \"slots@addr[|replica...][;slots@addr...]\"\n\
         \x20 manifest --metastore <addr>\n\
         profiles: sift gist pubchem fasttext uqvideo uniform<d> gamma<g>"
    );
}

/// Rejects flags the command does not understand — a typo like
/// `--taumax` must fail loudly, not silently fall back to a default.
fn check_flags(opts: &HashMap<String, String>, allowed: &[&str]) -> Result<(), String> {
    for k in opts.keys() {
        if !allowed.contains(&k.as_str()) {
            return Err(format!(
                "unknown flag --{k} (this command accepts: {})",
                allowed.iter().map(|f| format!("--{f}")).collect::<Vec<_>>().join(" ")
            ));
        }
    }
    Ok(())
}

fn need<'a>(opts: &'a HashMap<String, String>, k: &str) -> Result<&'a str, String> {
    opts.get(k).map(|s| s.as_str()).ok_or_else(|| format!("missing --{k}"))
}

fn parse<T: std::str::FromStr>(opts: &HashMap<String, String>, k: &str) -> Result<T, String> {
    need(opts, k)?.parse().map_err(|_| format!("--{k} is not a valid value"))
}

fn parse_or<T: std::str::FromStr>(
    opts: &HashMap<String, String>,
    k: &str,
    default: T,
) -> Result<T, String> {
    match opts.get(k) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{k} is not a valid value")),
    }
}

fn cmd_build(opts: &HashMap<String, String>) -> Result<(), String> {
    check_flags(
        opts,
        &[
            "out",
            "data",
            "profile",
            "rows",
            "seed",
            "shards",
            "m",
            "tau-max",
            "fleet-slots",
            "owned",
        ],
    )?;
    let out = need(opts, "out")?;
    let ds: Dataset = if let Some(path) = opts.get("data") {
        io::read_dataset(path).map_err(|e| format!("reading {path}: {e}"))?
    } else {
        let name =
            need(opts, "profile").map_err(|_| "need --data or --profile/--rows".to_string())?;
        let profile = Profile::by_name(name).ok_or_else(|| format!("unknown profile {name}"))?;
        let rows: usize = parse(opts, "rows")?;
        let seed: u64 = parse_or(opts, "seed", 42)?;
        profile.generate(rows, seed)
    };
    let shards: usize = parse_or(opts, "shards", 1)?;
    let m: usize = parse_or(opts, "m", GphConfig::suggested_m(ds.dim()))?;
    let tau_max: usize = parse_or(opts, "tau-max", 16)?;
    let cfg = GphConfig::new(m, tau_max);
    let t0 = Instant::now();
    let index = match (opts.get("fleet-slots"), opts.get("owned")) {
        (None, None) => ShardedIndex::build(&ds, shards, &cfg).map_err(|e| e.to_string())?,
        (Some(_), Some(owned)) => {
            // Fleet-node snapshot: keep only the rows whose fleet slot
            // (the id-hash FleetClient routes by) is owned, under their
            // global ids, so disjoint nodes reassemble the full corpus.
            let fleet_slots: u32 = parse(opts, "fleet-slots")?;
            if fleet_slots == 0 {
                return Err("--fleet-slots must be positive".into());
            }
            let owned = parse_slots(owned, fleet_slots)?;
            let index = ShardedIndex::build(&Dataset::new(ds.dim()), shards, &cfg)
                .map_err(|e| e.to_string())?;
            let mut kept = 0usize;
            for id in 0..ds.len() as u32 {
                let slot = ShardedIndex::shard_of(id, fleet_slots as usize) as u32;
                if owned.contains(&slot) {
                    index.insert(id, ds.row(id as usize)).map_err(|e| e.to_string())?;
                    kept += 1;
                }
            }
            eprintln!(
                "fleet mode: kept {kept} of {} rows (slots {:?} of {fleet_slots})",
                ds.len(),
                owned
            );
            index
        }
        _ => return Err("--fleet-slots and --owned must be given together".into()),
    };
    let build_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let manifest = index.snapshot(out).map_err(|e| e.to_string())?;
    println!(
        "built {} rows x {} dims over {} shard(s) in {build_s:.1}s \
         ({:.1} MB in memory), snapshotted to {out} in {:.2}s",
        index.len(),
        index.dim(),
        manifest.shards.len(),
        index.size_bytes() as f64 / 1e6,
        t1.elapsed().as_secs_f64(),
    );
    Ok(())
}

fn cmd_info(opts: &HashMap<String, String>) -> Result<(), String> {
    check_flags(opts, &["index"])?;
    let dir = need(opts, "index")?;
    let m = read_manifest(dir).map_err(|e| e.to_string())?;
    println!("snapshot:  {dir}");
    println!("records:   {}", m.len);
    println!("dims:      {}", m.dim);
    println!("tau_max:   {}", m.tau_max);
    println!("shards:    {} requested, {} non-empty", m.n_shards, m.shards.len());
    for e in &m.shards {
        println!(
            "  slot {:>3}: {:>8} rows  {}  crc32 {:08x}",
            e.slot,
            e.rows,
            e.file_name(),
            e.crc
        );
    }
    Ok(())
}

fn restore(opts: &HashMap<String, String>) -> Result<ShardedIndex, String> {
    let dir = need(opts, "index")?;
    let t0 = Instant::now();
    let index = ShardedIndex::restore(dir).map_err(|e| e.to_string())?;
    eprintln!(
        "restored {} rows over {} shard(s) in {:.2}s (no re-optimization)",
        index.len(),
        index.num_shards(),
        t0.elapsed().as_secs_f64()
    );
    Ok(index)
}

fn cmd_query(opts: &HashMap<String, String>) -> Result<(), String> {
    check_flags(
        opts,
        &["index", "connect", "metastore", "tau", "queries", "sample", "topk", "trace"],
    )?;
    if let Some(addr) = opts.get("metastore") {
        return cmd_query_fleet(addr, opts);
    }
    if let Some(addr) = opts.get("connect") {
        return cmd_query_remote(addr, opts);
    }
    let index = restore(opts)?;
    let tau: u32 = parse(opts, "tau")?;
    if tau as usize > index.tau_max() {
        return Err(format!("--tau {tau} exceeds the snapshot's tau_max {}", index.tau_max()));
    }
    let queries = load_queries(opts, index.dim())?;
    let topk: usize = parse_or(opts, "topk", 0)?;
    let trace = opts.contains_key("trace");
    if trace && topk > 0 {
        return Err("--trace applies to range queries, not --topk".into());
    }
    let t0 = Instant::now();
    let mut total = 0usize;
    for qi in 0..queries.len() {
        if topk > 0 {
            let hits = index.search_topk(queries.row(qi), topk);
            total += hits.len();
            println!("query {qi}: top-{topk} {:?}", &hits[..hits.len().min(8)]);
        } else if trace {
            let (res, qt) = index.search_traced(queries.row(qi), tau);
            total += res.ids.len();
            println!(
                "query {qi}: {} results {:?}",
                res.ids.len(),
                &res.ids[..res.ids.len().min(16)]
            );
            print_trace(&qt);
        } else {
            let ids = index.search(queries.row(qi), tau);
            total += ids.len();
            println!("query {qi}: {} results {:?}", ids.len(), &ids[..ids.len().min(16)]);
        }
    }
    eprintln!(
        "{} queries, {total} results in {:.1} ms",
        queries.len(),
        t0.elapsed().as_secs_f64() * 1e3
    );
    Ok(())
}

/// Loads `--queries <file>` or samples `--sample n` uniform vectors at
/// the index's dimensionality.
fn load_queries(opts: &HashMap<String, String>, dim: usize) -> Result<Dataset, String> {
    let queries: Dataset = if let Some(path) = opts.get("queries") {
        io::read_dataset(path).map_err(|e| format!("reading {path}: {e}"))?
    } else {
        let n: usize = parse_or(opts, "sample", 10)?;
        Profile::uniform(dim).generate(n, 0x5EED)
    };
    if queries.dim() != dim {
        return Err(format!("query dim {} != index dim {dim}", queries.dim()));
    }
    Ok(queries)
}

/// `query --connect`: the same query loop, but over the wire.
fn cmd_query_remote(addr: &str, opts: &HashMap<String, String>) -> Result<(), String> {
    if opts.contains_key("index") {
        return Err("--connect and --index are mutually exclusive".into());
    }
    let client = GphClient::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    let remote = client.stats().map_err(|e| format!("querying {addr} stats: {e}"))?;
    eprintln!(
        "connected to {addr}: {} rows x {} dims over {} shard(s), tau_max {}",
        remote.rows, remote.dim, remote.shards, remote.tau_max
    );
    let tau: u32 = parse(opts, "tau")?;
    if tau > remote.tau_max {
        return Err(format!("--tau {tau} exceeds the server's tau_max {}", remote.tau_max));
    }
    let queries = load_queries(opts, remote.dim as usize)?;
    let topk: usize = parse_or(opts, "topk", 0)?;
    let trace = opts.contains_key("trace");
    if trace && topk > 0 {
        return Err("--trace applies to range queries, not --topk".into());
    }
    let t0 = Instant::now();
    let mut total = 0usize;
    for qi in 0..queries.len() {
        if topk > 0 {
            let res = client.topk(queries.row(qi), topk).map_err(|e| e.to_string())?;
            total += res.hits.len();
            println!("query {qi}: top-{topk} {:?}", &res.hits[..res.hits.len().min(8)]);
        } else if trace {
            let traced = client.search_traced(queries.row(qi), tau).map_err(|e| e.to_string())?;
            total += traced.result.ids.len();
            println!(
                "query {qi}: {} results {:?}",
                traced.result.ids.len(),
                &traced.result.ids[..traced.result.ids.len().min(16)]
            );
            match &traced.trace {
                Some(qt) => print_trace(qt),
                None => println!("  (server sent no trace)"),
            }
        } else {
            let res = client.search(queries.row(qi), tau).map_err(|e| e.to_string())?;
            total += res.ids.len();
            println!(
                "query {qi}: {} results {:?}",
                res.ids.len(),
                &res.ids[..res.ids.len().min(16)]
            );
        }
    }
    eprintln!(
        "{} remote queries, {total} results in {:.1} ms",
        queries.len(),
        t0.elapsed().as_secs_f64() * 1e3
    );
    Ok(())
}

/// `stats --connect`: one `Stats` op, printed as a dashboard row.
fn cmd_stats(opts: &HashMap<String, String>) -> Result<(), String> {
    check_flags(opts, &["connect"])?;
    let addr = need(opts, "connect")?;
    let client = GphClient::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    let remote = client.stats().map_err(|e| e.to_string())?;
    let (s, c, a) = (&remote.stats.service, &remote.stats.cache, &remote.stats.admission);
    println!("server:     {addr}");
    println!(
        "index:      {} rows x {} dims, {} shard(s), tau_max {}",
        remote.rows, remote.dim, remote.shards, remote.tau_max
    );
    println!(
        "responses:  {} ({} executed, {} batches, {:.0} QPS)",
        s.responses, s.executed, s.batches, s.qps
    );
    println!(
        "latency:    p50 {:.3} ms  p95 {:.3} ms  p99 {:.3} ms  max {:.3} ms",
        s.latency_p50_ns as f64 / 1e6,
        s.latency_p95_ns as f64 / 1e6,
        s.latency_p99_ns as f64 / 1e6,
        s.latency_max_ns as f64 / 1e6,
    );
    println!("mutations:  {} applied, {} shed on full queue", s.mutations, s.queue_rejections);
    println!(
        "cache:      {} hits / {} misses ({:.0}% hit rate), {} invalidations, {}/{} resident",
        c.hits,
        c.misses,
        remote.stats.cache.hit_rate() * 100.0,
        c.invalidations,
        c.len,
        c.capacity
    );
    println!(
        "work:       {:.0} candidates, {:.0} scanned, {:.1} results per query",
        s.candidates_per_query, s.scanned_per_query, s.results_per_query
    );
    println!(
        "admission:  {} admitted, {} degraded, {} rejected",
        a.admitted, a.degraded, a.rejected
    );
    // The page cache and the tracer live in the metrics exposition, not
    // the Stats payload; one Metrics op fills in the rest of the row.
    let exp = gph_suite::obs::Exposition::parse(&client.metrics().map_err(|e| e.to_string())?);
    let val = |series: &str| exp.value(series).unwrap_or(0.0);
    let (pc_hits, pc_misses) = (val("gph_pagecache_hits"), val("gph_pagecache_misses"));
    if pc_hits + pc_misses > 0.0 {
        println!(
            "pagecache:  {pc_hits:.0} hits / {pc_misses:.0} misses ({:.0}% hit rate), \
             {:.0} evictions, {:.1} MB resident",
            pc_hits / (pc_hits + pc_misses) * 100.0,
            val("gph_pagecache_evictions"),
            val("gph_pagecache_resident_bytes") / 1e6,
        );
    } else {
        println!("pagecache:  inactive (fully resident)");
    }
    println!(
        "tracing:    {:.0} sampled, {:.0} slow (ring-retained)",
        val("gph_trace_sampled_total"),
        val("gph_trace_slow_total"),
    );
    Ok(())
}

/// `metrics --connect`: one `Metrics` op; prints the server's Prometheus
/// text exposition verbatim (pipe it into a scrape file or `promtool`).
/// `metrics --metastore`: one `AggregateMetrics` op; the metastore
/// scrapes every node in the manifest, merges the expositions, and
/// reports unreachable nodes as stale (listed on stderr) instead of
/// failing the aggregation.
fn cmd_metrics(opts: &HashMap<String, String>) -> Result<(), String> {
    check_flags(opts, &["connect", "metastore"])?;
    if let Some(addr) = opts.get("metastore") {
        if opts.contains_key("connect") {
            return Err("--metastore excludes --connect".into());
        }
        let client = GphClient::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
        let fleet = client.aggregate_metrics().map_err(|e| e.to_string())?;
        for node in &fleet.nodes {
            match &node.error {
                None => eprintln!("node {}: fresh", node.node),
                Some(e) => eprintln!("node {}: stale ({e})", node.node),
            }
        }
        print!("{}", fleet.merged);
        return Ok(());
    }
    let addr = need(opts, "connect").map_err(|_| "need --connect or --metastore".to_string())?;
    let client = GphClient::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    let text = client.metrics().map_err(|e| e.to_string())?;
    print!("{text}");
    Ok(())
}

/// `fleettop --metastore`: a one-shot fleet health summary. Two
/// federated scrapes `--interval` seconds apart give per-node QPS
/// (counter delta over the window); the rest of the row reads straight
/// from each node's latest exposition.
fn cmd_fleettop(opts: &HashMap<String, String>) -> Result<(), String> {
    check_flags(opts, &["metastore", "interval"])?;
    let addr = need(opts, "metastore")?;
    let interval: f64 = parse_or(opts, "interval", 1.0)?;
    if interval <= 0.0 || !interval.is_finite() {
        return Err("--interval must be positive".into());
    }
    let client = GphClient::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    let first = client.aggregate_metrics().map_err(|e| e.to_string())?;
    std::thread::sleep(Duration::from_secs_f64(interval));
    let second = client.aggregate_metrics().map_err(|e| e.to_string())?;

    let before: HashMap<&str, gph_suite::obs::Exposition> = first
        .nodes
        .iter()
        .filter(|n| n.error.is_none())
        .map(|n| (n.node.as_str(), gph_suite::obs::Exposition::parse(&n.text)))
        .collect();
    println!(
        "{:<21} {:>8} {:>9} {:>10} {:>6} {:>13}",
        "node", "qps", "p99(ms)", "pagecache", "conns", "backpressure"
    );
    for node in &second.nodes {
        if let Some(e) = &node.error {
            println!("{:<21} stale: {e}", node.node);
            continue;
        }
        let exp = gph_suite::obs::Exposition::parse(&node.text);
        let val = |series: &str| exp.value(series).unwrap_or(0.0);
        let qps = before
            .get(node.node.as_str())
            .and_then(|b| b.value("gph_responses_total"))
            .map_or(0.0, |prev| (val("gph_responses_total") - prev).max(0.0) / interval);
        let (hits, misses) = (val("gph_pagecache_hits"), val("gph_pagecache_misses"));
        let pagecache = if hits + misses > 0.0 {
            format!("{:.0}%", hits / (hits + misses) * 100.0)
        } else {
            "-".to_string()
        };
        println!(
            "{:<21} {:>8.1} {:>9.3} {:>10} {:>6.0} {:>13.0}",
            node.node,
            qps,
            val("gph_latency_ns{quantile=\"0.99\"}") / 1e6,
            pagecache,
            val("gph_net_connections_active"),
            val("gph_net_backpressure_pauses_total"),
        );
    }
    Ok(())
}

/// Pretty-prints one query's phase trace, one line per shard and
/// indented lines per segment (the memtable scan prints last).
fn print_trace(qt: &gph_suite::obs::QueryTrace) {
    let p = qt.phase_totals();
    println!(
        "  trace: tau={} wall {:.3} ms (alloc {:.3} + enumerate {:.3} + probe {:.3} \
         + verify {:.3} + scan {:.3} ms across shards)",
        qt.tau,
        qt.total_ns as f64 / 1e6,
        p.alloc_ns as f64 / 1e6,
        p.enumerate_ns as f64 / 1e6,
        p.probe_ns as f64 / 1e6,
        p.verify_ns as f64 / 1e6,
        p.scan_ns as f64 / 1e6,
    );
    for shard in &qt.shards {
        println!("    shard {}: {:.3} ms", shard.shard, shard.total_ns as f64 / 1e6);
        for seg in &shard.segments {
            let name = if seg.segment == gph_suite::obs::trace::MEMTABLE_SEGMENT {
                "memtable".to_string()
            } else {
                format!("segment {}", seg.segment)
            };
            println!(
                "      {name}: {} rows, {} sigs, {} postings, {} scanned, \
                 {} candidates, {} results, {:.3} ms",
                seg.rows,
                seg.n_signatures,
                seg.sum_postings,
                seg.n_scanned,
                seg.n_candidates,
                seg.n_results,
                seg.phases.total() as f64 / 1e6,
            );
        }
    }
}

/// Pretty-prints a merged fleet trace: one line per hop attributing
/// node-side engine time vs network + queue time, straggler marked.
fn print_fleet_trace(ft: &gph_suite::obs::FleetTrace) {
    println!(
        "  fleet trace {:016x}: tau={} wall {:.3} ms over {} hop(s)",
        ft.trace_id,
        ft.tau,
        ft.total_ns as f64 / 1e6,
        ft.hops.len()
    );
    let straggler = ft.straggler().map(|h| h.node.as_str()).unwrap_or_default();
    for hop in &ft.hops {
        println!(
            "    {}: e2e {:.3} ms = engine {:.3} ms + network/queue {:.3} ms{}",
            hop.node,
            hop.e2e_ns as f64 / 1e6,
            hop.trace.total_ns as f64 / 1e6,
            hop.network_ns() as f64 / 1e6,
            if hop.node == straggler { "  <- straggler" } else { "" }
        );
    }
}

fn cmd_add(opts: &HashMap<String, String>) -> Result<(), String> {
    check_flags(opts, &["index", "id", "bits", "random-seed", "upsert"])?;
    let dir = need(opts, "index")?;
    let id: u32 = parse(opts, "id")?;
    let index = restore(opts)?;
    let row: Vec<u64> = if let Some(bits) = opts.get("bits") {
        if bits.len() != index.dim() {
            return Err(format!("--bits has {} digits, index dim is {}", bits.len(), index.dim()));
        }
        let v = gph_suite::hamming_core::BitVector::parse(bits)
            .map_err(|e| format!("parsing --bits: {e}"))?;
        v.words().to_vec()
    } else {
        let seed: u64 =
            parse(opts, "random-seed").map_err(|_| "need --bits or --random-seed".to_string())?;
        let sample = Profile::uniform(index.dim()).generate(1, seed);
        sample.row(0).to_vec()
    };
    if opts.contains_key("upsert") {
        let replaced = index.upsert(id, &row).map_err(|e| e.to_string())?;
        println!("{} id {id}", if replaced { "replaced" } else { "inserted" });
    } else {
        index.insert(id, &row).map_err(|e| e.to_string())?;
        println!("inserted id {id}");
    }
    index.snapshot(dir).map_err(|e| e.to_string())?;
    println!("{} live rows, snapshot updated at {dir}", index.len());
    Ok(())
}

fn cmd_del(opts: &HashMap<String, String>) -> Result<(), String> {
    check_flags(opts, &["index", "id"])?;
    let dir = need(opts, "index")?;
    let id: u32 = parse(opts, "id")?;
    let index = restore(opts)?;
    if !index.delete(id) {
        return Err(format!("id {id} is not live in this index"));
    }
    index.snapshot(dir).map_err(|e| e.to_string())?;
    println!("deleted id {id}; {} live rows, snapshot updated at {dir}", index.len());
    Ok(())
}

/// Parses a comma-separated slot list, bounds-checked against the fleet
/// slot count.
fn parse_slots(s: &str, fleet_slots: u32) -> Result<Vec<u32>, String> {
    let mut slots = Vec::new();
    for part in s.split(',') {
        let slot: u32 = part.trim().parse().map_err(|_| format!("bad slot {part:?} in {s:?}"))?;
        if slot >= fleet_slots {
            return Err(format!("slot {slot} is out of range for --fleet-slots {fleet_slots}"));
        }
        if !slots.contains(&slot) {
            slots.push(slot);
        }
    }
    if slots.is_empty() {
        return Err("the slot list is empty".into());
    }
    Ok(slots)
}

/// `metastore --listen`: run the manifest server until the optional
/// `--duration` elapses (0 = run until killed).
fn cmd_metastore(opts: &HashMap<String, String>) -> Result<(), String> {
    check_flags(opts, &["listen", "duration"])?;
    let listen = need(opts, "listen")?;
    let server = MetastoreServer::bind(listen, ServerConfig::default())
        .map_err(|e| format!("binding {listen}: {e}"))?;
    println!("metastore listening on {} (no manifest published yet)", server.local_addr());
    let duration: u64 = parse_or(opts, "duration", 0)?;
    if duration == 0 {
        eprintln!("serving until killed (pass --duration <secs> for a bounded run)");
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    std::thread::sleep(Duration::from_secs(duration));
    let version = server.manifest().map_or(0, |m| m.version);
    let stats = server.shutdown();
    println!(
        "served {} request(s) over {} connection(s) in {duration}s; \
         final manifest version {version}; drained and shut down",
        stats.requests, stats.connections_opened
    );
    Ok(())
}

/// Parses `--nodes "slots@addr[|replica...][;slots@addr...]"` into a
/// manifest's node list.
fn parse_nodes(s: &str, fleet_slots: u32) -> Result<Vec<FleetNode>, String> {
    let mut nodes = Vec::new();
    for group in s.split(';') {
        let (slots, addrs) = group
            .split_once('@')
            .ok_or_else(|| format!("node spec {group:?} is not slots@addr"))?;
        let addrs: Vec<String> =
            addrs.split('|').map(str::trim).filter(|a| !a.is_empty()).map(String::from).collect();
        if addrs.is_empty() {
            return Err(format!("node spec {group:?} has no addresses"));
        }
        nodes.push(FleetNode { slots: parse_slots(slots, fleet_slots)?, addrs });
    }
    Ok(nodes)
}

/// `publish --metastore`: install a new shard→node map. The metastore
/// rejects stale versions, so republishing requires a strictly larger
/// `--version`.
fn cmd_publish(opts: &HashMap<String, String>) -> Result<(), String> {
    check_flags(opts, &["metastore", "version", "fleet-slots", "nodes"])?;
    let addr = need(opts, "metastore")?;
    let version: u64 = parse(opts, "version")?;
    let fleet_slots: u32 = parse(opts, "fleet-slots")?;
    let manifest = FleetManifest {
        version,
        n_shards: fleet_slots,
        nodes: parse_nodes(need(opts, "nodes")?, fleet_slots)?,
    };
    manifest.validate().map_err(|e| format!("invalid manifest: {e}"))?;
    let client = GphClient::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    let installed = client.publish_manifest(&manifest).map_err(|e| e.to_string())?;
    println!(
        "published manifest v{installed}: {} slot(s) over {} node group(s)",
        fleet_slots,
        manifest.nodes.len()
    );
    Ok(())
}

/// `manifest --metastore`: print the current shard→node map.
fn cmd_manifest(opts: &HashMap<String, String>) -> Result<(), String> {
    check_flags(opts, &["metastore"])?;
    let addr = need(opts, "metastore")?;
    let client = GphClient::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    match client.get_manifest().map_err(|e| e.to_string())? {
        None => println!("metastore {addr}: no manifest published yet"),
        Some(m) => {
            println!("metastore: {addr}");
            println!("version:   {}", m.version);
            println!("slots:     {}", m.n_shards);
            for (i, node) in m.nodes.iter().enumerate() {
                println!(
                    "  node {i}: slots {:?}  primary {}{}",
                    node.slots,
                    node.addrs[0],
                    if node.addrs.len() > 1 {
                        format!("  replicas {}", node.addrs[1..].join(" "))
                    } else {
                        String::new()
                    }
                );
            }
        }
    }
    Ok(())
}

/// `query --metastore`: the query loop routed through a [`FleetClient`]
/// — scatter-gather over the manifest's nodes with the exact merge.
fn cmd_query_fleet(addr: &str, opts: &HashMap<String, String>) -> Result<(), String> {
    if opts.contains_key("index") || opts.contains_key("connect") {
        return Err("--metastore excludes --index and --connect".into());
    }
    let fleet = FleetClient::connect(addr, FleetConfig::default())
        .map_err(|e| format!("connecting to metastore {addr}: {e}"))?;
    let manifest = fleet.manifest();
    // Dimensionality comes from any node; the manifest only maps slots.
    let primary = manifest.nodes[0].addrs[0].clone();
    let remote = GphClient::connect(&primary)
        .and_then(|c| c.stats())
        .map_err(|e| format!("querying node {primary} stats: {e}"))?;
    eprintln!(
        "fleet manifest v{}: {} slot(s) over {} node group(s), {} dims",
        manifest.version,
        manifest.n_shards,
        manifest.nodes.len(),
        remote.dim
    );
    let tau: u32 = parse(opts, "tau")?;
    let queries = load_queries(opts, remote.dim as usize)?;
    let topk: usize = parse_or(opts, "topk", 0)?;
    let trace = opts.contains_key("trace");
    if trace && topk > 0 {
        return Err("--trace applies to range queries, not --topk".into());
    }
    let t0 = Instant::now();
    let mut total = 0usize;
    for qi in 0..queries.len() {
        if topk > 0 {
            let res = fleet.topk(queries.row(qi), topk).map_err(|e| e.to_string())?;
            total += res.hits.len();
            println!(
                "query {qi}: top-{topk} {:?}{}",
                &res.hits[..res.hits.len().min(8)],
                if res.degraded { "  (degraded)" } else { "" }
            );
        } else if trace {
            let res = fleet.search_traced(queries.row(qi), tau).map_err(|e| e.to_string())?;
            total += res.ids.len();
            println!(
                "query {qi}: {} results {:?}{}",
                res.ids.len(),
                &res.ids[..res.ids.len().min(16)],
                if res.degraded { "  (degraded)" } else { "" }
            );
            print_fleet_trace(&res.trace);
        } else {
            let res = fleet.search(queries.row(qi), tau).map_err(|e| e.to_string())?;
            total += res.ids.len();
            println!(
                "query {qi}: {} results {:?}{}",
                res.ids.len(),
                &res.ids[..res.ids.len().min(16)],
                if res.degraded { "  (degraded)" } else { "" }
            );
        }
    }
    eprintln!(
        "{} fleet queries, {total} results in {:.1} ms",
        queries.len(),
        t0.elapsed().as_secs_f64() * 1e3
    );
    Ok(())
}

/// Parses a byte count with an optional `k`/`m`/`g` suffix (`64m` =
/// 64 MiB).
fn parse_budget(s: &str) -> Result<u64, String> {
    let (digits, unit) = match s.char_indices().find(|(_, c)| !c.is_ascii_digit()) {
        None => (s, 1u64),
        Some((i, c)) => {
            let unit = match c.to_ascii_lowercase() {
                'k' => 1u64 << 10,
                'm' => 1 << 20,
                'g' => 1 << 30,
                _ => return Err(format!("--memory-budget {s}: expected bytes or k/m/g suffix")),
            };
            if i + c.len_utf8() != s.len() {
                return Err(format!("--memory-budget {s}: trailing characters after the unit"));
            }
            (&s[..i], unit)
        }
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("--memory-budget {s}: expected bytes or k/m/g suffix"))?;
    n.checked_mul(unit)
        .filter(|&b| b > 0)
        .ok_or_else(|| format!("--memory-budget {s}: not a positive byte count"))
}

fn cmd_serve(opts: &HashMap<String, String>) -> Result<(), String> {
    check_flags(
        opts,
        &["index", "queries", "tau", "workers", "batch", "listen", "duration", "memory-budget"],
    )?;
    let dir = need(opts, "index")?;
    let n_queries: usize = parse_or(opts, "queries", 1000)?;
    let workers: usize = parse_or(opts, "workers", 0)?;
    let batch: usize = parse_or(opts, "batch", 16)?;
    // `--memory-budget` flips the fleet to out-of-core serving: sealed
    // segments page from the snapshot files through a cache capped at
    // the given byte budget instead of loading resident.
    let storage = match opts.get("memory-budget") {
        None => StorageMode::Resident,
        Some(s) => StorageMode::FileBacked { budget_bytes: parse_budget(s)? },
    };
    let cfg = ServiceConfig { workers, storage, ..ServiceConfig::default() };
    let t0 = Instant::now();
    let service = QueryService::warm_start(dir, cfg).map_err(|e| e.to_string())?;
    match storage {
        StorageMode::Resident => {
            eprintln!("service warm-started from {dir} in {:.2}s", t0.elapsed().as_secs_f64());
        }
        StorageMode::FileBacked { budget_bytes } => eprintln!(
            "service warm-started from {dir} in {:.2}s \
             (file-backed, {:.1} MB page-cache budget)",
            t0.elapsed().as_secs_f64(),
            budget_bytes as f64 / 1e6
        ),
    }
    if let Some(listen) = opts.get("listen") {
        return serve_network(listen, service, opts);
    }
    let (dim, tau_max) = (service.index().dim(), service.index().tau_max());
    let tau: u32 = parse_or(opts, "tau", (tau_max / 2).max(1) as u32)?;
    if tau as usize > tau_max {
        return Err(format!("--tau {tau} exceeds the snapshot's tau_max {tau_max}"));
    }
    let queries = Profile::uniform(dim).generate(n_queries, 0xCAFE);
    let t1 = Instant::now();
    let mut tickets = Vec::new();
    for chunk_start in (0..queries.len()).step_by(batch.max(1)) {
        let chunk: Vec<&[u64]> = (chunk_start..(chunk_start + batch.max(1)).min(queries.len()))
            .map(|i| queries.row(i))
            .collect();
        tickets.push(service.submit_batch(&chunk, tau));
    }
    let mut results = 0usize;
    for t in tickets {
        for resp in t.wait() {
            results += resp.ids().map_or(0, <[u32]>::len);
        }
    }
    let elapsed = t1.elapsed().as_secs_f64();
    let st = service.stats();
    println!(
        "{n_queries} queries at tau={tau}: {results} results in {elapsed:.2}s \
         ({:.0} QPS, p50 {:.2} ms, p95 {:.2} ms, {:.0} candidates/query)",
        n_queries as f64 / elapsed,
        st.latency_p50_ns as f64 / 1e6,
        st.latency_p95_ns as f64 / 1e6,
        st.candidates_per_query,
    );
    Ok(())
}

/// `serve --listen`: expose the warm-started service over TCP until the
/// optional `--duration` elapses (0 = run until killed).
fn serve_network(
    listen: &str,
    service: QueryService,
    opts: &HashMap<String, String>,
) -> Result<(), String> {
    let service = Arc::new(service);
    let server = NetServer::bind(listen, Arc::clone(&service), ServerConfig::default())
        .map_err(|e| format!("binding {listen}: {e}"))?;
    let index = service.index();
    println!(
        "listening on {} — {} rows x {} dims over {} shard(s), tau_max {}",
        server.local_addr(),
        index.len(),
        index.dim(),
        index.num_shards(),
        index.tau_max()
    );
    let duration: u64 = parse_or(opts, "duration", 0)?;
    if duration == 0 {
        eprintln!("serving until killed (pass --duration <secs> for a bounded run)");
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    std::thread::sleep(Duration::from_secs(duration));
    let stats = server.shutdown();
    println!(
        "served {} request(s) over {} connection(s) in {duration}s \
         ({} responses, {} errors, {} B in, {} B out); drained and shut down",
        stats.requests,
        stats.connections_opened,
        stats.responses,
        stats.errors_sent,
        stats.bytes_in,
        stats.bytes_out
    );
    Ok(())
}

//! `gph-cli` — command-line Hamming search over the suite's binary
//! formats.
//!
//! ```text
//! gph-cli generate --profile gist --rows 20000 --out data.hamd
//! gph-cli binarize --fvecs feats.fvecs --bits 128 --out data.hamd
//! gph-cli stats    --data data.hamd
//! gph-cli partition --data data.hamd --m 10 --tau-max 32 --out part.hamp
//! gph-cli query    --data data.hamd --queries q.hamd --tau 8 [--partitioning part.hamp]
//! gph-cli join     --data data.hamd --tau 4 [--threads 4]
//! ```
//!
//! Datasets use the `HAMD` format (`hamming_core::io`), partitionings the
//! `HAMP` format; `.fvecs` float features can be binarized with random
//! hyperplanes.

use gph_suite::datagen::{binarize, Profile};
use gph_suite::gph::engine::{Gph, GphConfig};
use gph_suite::gph::partition_opt::PartitionStrategy;
use gph_suite::hamming_core::io;
use gph_suite::hamming_core::stats::DimStats;
use gph_suite::hamming_core::Dataset;
use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        usage();
        return ExitCode::FAILURE;
    };
    let mut opts: HashMap<String, String> = HashMap::new();
    let mut key: Option<String> = None;
    for a in args {
        if let Some(stripped) = a.strip_prefix("--") {
            if let Some(k) = key.take() {
                opts.insert(k, "true".into()); // boolean flag
            }
            key = Some(stripped.to_string());
        } else if let Some(k) = key.take() {
            opts.insert(k, a);
        } else {
            eprintln!("unexpected argument: {a}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(k) = key.take() {
        opts.insert(k, "true".into());
    }
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&opts),
        "binarize" => cmd_binarize(&opts),
        "stats" => cmd_stats(&opts),
        "partition" => cmd_partition(&opts),
        "query" => cmd_query(&opts),
        "join" => cmd_join(&opts),
        "--help" | "-h" | "help" => {
            usage();
            Ok(())
        }
        other => Err(format!("unknown command: {other}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "gph-cli <command> [--opt value]...\n\
         commands:\n\
         \x20 generate  --profile <name> --rows <n> --out <file.hamd> [--seed s]\n\
         \x20 binarize  --fvecs <file.fvecs> --bits <n> --out <file.hamd> [--seed s]\n\
         \x20 stats     --data <file.hamd>\n\
         \x20 partition --data <file.hamd> --m <m> --tau-max <t> --out <file.hamp>\n\
         \x20 query     --data <file.hamd> --queries <file.hamd> --tau <t>\n\
         \x20           [--m m] [--tau-max t] [--partitioning file.hamp]\n\
         \x20 join      --data <file.hamd> --tau <t> [--threads k] [--limit n]\n\
         profiles: sift gist pubchem fasttext uqvideo uniform<d> gamma<g>"
    );
}

fn need<'a>(opts: &'a HashMap<String, String>, k: &str) -> Result<&'a str, String> {
    opts.get(k).map(|s| s.as_str()).ok_or_else(|| format!("missing --{k}"))
}

fn parse<T: std::str::FromStr>(opts: &HashMap<String, String>, k: &str) -> Result<T, String> {
    need(opts, k)?.parse().map_err(|_| format!("--{k} is not a valid value"))
}

fn parse_or<T: std::str::FromStr>(
    opts: &HashMap<String, String>,
    k: &str,
    default: T,
) -> Result<T, String> {
    match opts.get(k) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{k} is not a valid value")),
    }
}

fn load(opts: &HashMap<String, String>, k: &str) -> Result<Dataset, String> {
    let path = need(opts, k)?;
    io::read_dataset(path).map_err(|e| format!("reading {path}: {e}"))
}

fn cmd_generate(opts: &HashMap<String, String>) -> Result<(), String> {
    let name = need(opts, "profile")?;
    let profile = Profile::by_name(name).ok_or_else(|| format!("unknown profile {name}"))?;
    let rows: usize = parse(opts, "rows")?;
    let seed: u64 = parse_or(opts, "seed", 42)?;
    let out = need(opts, "out")?;
    let ds = profile.generate(rows, seed);
    io::write_dataset(&ds, out).map_err(|e| e.to_string())?;
    println!("wrote {rows} x {} dims to {out}", ds.dim());
    Ok(())
}

fn cmd_binarize(opts: &HashMap<String, String>) -> Result<(), String> {
    let fvecs = need(opts, "fvecs")?;
    let bits: usize = parse(opts, "bits")?;
    let seed: u64 = parse_or(opts, "seed", 7)?;
    let out = need(opts, "out")?;
    let x = binarize::read_fvecs(fvecs).map_err(|e| e.to_string())?;
    let rh = binarize::RandomHyperplanes::new(x.dim, bits, seed);
    let ds = rh.encode_all(&x);
    io::write_dataset(&ds, out).map_err(|e| e.to_string())?;
    println!("binarized {} x {}d floats into {} x {bits} bits -> {out}", x.len(), x.dim, ds.len());
    Ok(())
}

fn cmd_stats(opts: &HashMap<String, String>) -> Result<(), String> {
    let ds = load(opts, "data")?;
    let st = DimStats::compute(&ds);
    let mut skews = st.skewness_profile();
    skews.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let pick = |q: f64| skews[((skews.len() - 1) as f64 * q) as usize];
    println!("rows: {}", ds.len());
    println!("dims: {}", ds.dim());
    println!("payload: {:.2} MB", ds.size_bytes() as f64 / 1e6);
    println!(
        "skewness: mean {:.3}, p10 {:.3}, median {:.3}, p90 {:.3}, max {:.3}",
        st.mean_skewness(),
        pick(0.1),
        pick(0.5),
        pick(0.9),
        skews.last().copied().unwrap_or(0.0)
    );
    println!("dims with skew > 0.3: {}", skews.iter().filter(|&&s| s > 0.3).count());
    Ok(())
}

fn build_engine(
    data: Dataset,
    opts: &HashMap<String, String>,
    tau_floor: usize,
) -> Result<Gph, String> {
    let dim = data.dim();
    let m: usize = parse_or(opts, "m", GphConfig::suggested_m(dim))?;
    let tau_max: usize = parse_or(opts, "tau-max", tau_floor.max(16))?;
    let mut cfg = GphConfig::new(m, tau_max.max(tau_floor));
    if let Some(path) = opts.get("partitioning") {
        let p = io::read_partitioning(path).map_err(|e| e.to_string())?;
        cfg.strategy = PartitionStrategy::Fixed(p);
    }
    Gph::build(data, &cfg).map_err(|e| e.to_string())
}

fn cmd_partition(opts: &HashMap<String, String>) -> Result<(), String> {
    let ds = load(opts, "data")?;
    let out = need(opts, "out")?;
    let engine = build_engine(ds, opts, 0)?;
    io::write_partitioning(engine.partitioning(), out).map_err(|e| e.to_string())?;
    let bs = engine.build_stats();
    println!(
        "partitioning ({} parts) written to {out} in {:.1}s",
        engine.partitioning().num_parts(),
        bs.partition_ms as f64 / 1e3
    );
    Ok(())
}

fn cmd_query(opts: &HashMap<String, String>) -> Result<(), String> {
    let ds = load(opts, "data")?;
    let queries = load(opts, "queries")?;
    if queries.dim() != ds.dim() {
        return Err(format!("query dim {} != data dim {}", queries.dim(), ds.dim()));
    }
    let tau: u32 = parse(opts, "tau")?;
    let t0 = Instant::now();
    let engine = build_engine(ds, opts, tau as usize)?;
    eprintln!("index built in {:.1}s", t0.elapsed().as_secs_f64());
    let t1 = Instant::now();
    let mut total = 0usize;
    for qi in 0..queries.len() {
        let ids = engine.search(queries.row(qi), tau);
        total += ids.len();
        println!(
            "query {qi}: {} results{}{:?}",
            ids.len(),
            if ids.is_empty() { "" } else { " " },
            &ids[..ids.len().min(16)]
        );
    }
    eprintln!(
        "{} queries, {total} results in {:.1} ms",
        queries.len(),
        t1.elapsed().as_secs_f64() * 1e3
    );
    Ok(())
}

fn cmd_join(opts: &HashMap<String, String>) -> Result<(), String> {
    let ds = load(opts, "data")?;
    let tau: u32 = parse(opts, "tau")?;
    let threads: usize = parse_or(opts, "threads", 1)?;
    let limit: usize = parse_or(opts, "limit", 50)?;
    let engine = build_engine(ds, opts, tau as usize)?;
    let t = Instant::now();
    let pairs = engine.self_join(tau, threads);
    eprintln!(
        "{} pairs within tau={tau} in {:.1} ms",
        pairs.len(),
        t.elapsed().as_secs_f64() * 1e3
    );
    for (a, b) in pairs.iter().take(limit) {
        println!("{a}\t{b}");
    }
    if pairs.len() > limit {
        println!("… ({} more; raise --limit to list)", pairs.len() - limit);
    }
    Ok(())
}

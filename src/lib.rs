//! # gph-suite
//!
//! Facade crate for the reproduction of *GPH: Similarity Search in Hamming
//! Space* (Qin et al., ICDE 2018). It re-exports the workspace crates so
//! examples and downstream users can depend on a single package:
//!
//! * [`hamming_core`] — bit-vector substrate (storage, distance,
//!   partitionings, projections, signature enumeration, statistics).
//! * [`datagen`] — synthetic datasets matching the paper's evaluation
//!   profiles.
//! * [`mlkit`] — the small learning substrate behind GPH's learned
//!   candidate-number estimator.
//! * [`gph`] — the paper's contribution: the GPH index and its threshold
//!   allocation / dimension partitioning machinery.
//! * [`baselines`] — MIH, HmSearch, PartAlloc, MinHash LSH and linear scan.
//! * [`obs`] — the observability layer: lock-free metrics registry with
//!   Prometheus text exposition, and sampled per-query phase tracing.
//! * [`serve`] — the serving layer: sharded scatter-gather, a batching
//!   worker pool with admission control, and an LRU result cache.
//! * [`net`] — the network layer: the `GPHN` binary wire protocol, a
//!   TCP server over the service, and a pipelined blocking client.
//!
//! See `examples/quickstart.rs` for a five-minute tour,
//! `examples/sharded_service.rs` for the serving layer, and
//! `examples/network_service.rs` for serving over TCP.

pub use baselines;
pub use datagen;
pub use gph;
pub use gph_net as net;
pub use gph_obs as obs;
pub use gph_serve as serve;
pub use hamming_core;
pub use mlkit;

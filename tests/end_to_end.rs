//! Cross-crate integration tests: the full pipeline from data generation
//! through every engine, on realistic (small) workloads.

use gph_suite::baselines::{HmSearch, LinearScan, Mih, MinHashLsh, PartAlloc, SearchIndex};
use gph_suite::datagen::{plant_near_duplicates, sample_queries, Profile};
use gph_suite::gph::cn::learned::{LearnedParams, ModelKind};
use gph_suite::gph::engine::{Gph, GphConfig};
use gph_suite::gph::partition_opt::{HeuristicConfig, InitKind, PartitionStrategy, WorkloadSpec};
use gph_suite::gph::{AllocatorKind, EstimatorKind};
use gph_suite::hamming_core::distance::{tanimoto, tanimoto_to_hamming_bound};
use gph_suite::hamming_core::io::{decode_dataset, encode_dataset};

/// The full paper pipeline (GR partitioning + DP allocation + SP
/// estimation) returns exactly the scan results on a skewed profile.
#[test]
fn full_pipeline_exact_on_skewed_profile() {
    let profile = Profile::synthetic_gamma(0.35);
    let ds = profile.generate(1_500, 1);
    let qs = sample_queries(&ds, 10, 15, 2);
    let mut cfg = GphConfig::new(5, 12);
    cfg.workload = Some(WorkloadSpec::new(qs.workload.clone(), vec![4, 8, 12]));
    cfg.strategy = PartitionStrategy::Heuristic(HeuristicConfig {
        init: InitKind::Greedy,
        max_iters: 4,
        move_budget: Some(256),
        sample_rows: 500,
        seed: 3,
    });
    let engine = Gph::build(qs.data.clone(), &cfg).unwrap();
    for tau in [0u32, 4, 8, 12] {
        for qi in 0..qs.queries.len() {
            let q = qs.queries.row(qi);
            assert_eq!(engine.search(q, tau), qs.data.linear_scan(q, tau), "tau={tau}");
        }
    }
}

/// Every estimator kind drives the engine to exact results (estimates
/// only steer the optimizer; the filter stays correct).
#[test]
fn all_estimators_preserve_exactness() {
    let profile = Profile::uqvideo_like();
    let ds = profile.generate(800, 4);
    let queries = profile.generate(5, 5);
    let estimators = vec![
        EstimatorKind::Exact { max_width: 20 },
        EstimatorKind::SubPartition { sub_count: 2, paper_shift: false },
        EstimatorKind::SubPartition { sub_count: 2, paper_shift: true },
        EstimatorKind::SampleScan { sample_cap: 200, seed: 6 },
        EstimatorKind::Learned(LearnedParams {
            model: ModelKind::Svm,
            n_train: 60,
            ..Default::default()
        }),
    ];
    for est in estimators {
        let mut cfg = GphConfig::new(16, 10);
        cfg.estimator = est.clone();
        cfg.strategy = PartitionStrategy::Os;
        let engine = Gph::build(ds.clone(), &cfg).unwrap();
        for qi in 0..queries.len() {
            let q = queries.row(qi);
            assert_eq!(engine.search(q, 10), ds.linear_scan(q, 10), "estimator {est:?}");
        }
    }
}

/// Serialization round-trips through the binary format and the engines
/// built on both sides agree.
#[test]
fn serialized_dataset_builds_identical_index() {
    let profile = Profile::sift_like();
    let ds = profile.generate(500, 7);
    let restored = decode_dataset(&encode_dataset(&ds)).unwrap();
    let cfg = GphConfig { strategy: PartitionStrategy::Original, ..GphConfig::new(4, 8) };
    let a = Gph::build(ds.clone(), &cfg).unwrap();
    let b = Gph::build(restored, &cfg).unwrap();
    let q = ds.row(3);
    assert_eq!(a.search(q, 8), b.search(q, 8));
}

/// LSH achieves its configured recall target on planted near-duplicates.
#[test]
fn lsh_recall_floor_on_planted_clusters() {
    let background = Profile::uniform(64).generate(2_000, 8);
    let (ds, truth) = plant_near_duplicates(&background, 30, 6, 4, 9);
    let lsh = MinHashLsh::build(ds.clone(), 6).unwrap();
    let mut found = 0usize;
    let mut total = 0usize;
    for cluster in &truth.clusters {
        let q = ds.row(cluster[0] as usize);
        let truth_ids = ds.linear_scan(q, 6);
        let got = lsh.search(q, 6);
        for id in &got {
            assert!(truth_ids.contains(id), "LSH returned a false positive");
        }
        found += got.len();
        total += truth_ids.len();
    }
    let recall = found as f64 / total as f64;
    assert!(recall >= 0.7, "LSH recall {recall} too far below its 0.95 target");
}

/// Tanimoto search via the Hamming bound finds exactly the brute-force
/// answer set (the chem_search example's invariant, as a test).
#[test]
fn tanimoto_via_hamming_is_exact() {
    let profile = Profile::pubchem_like();
    let ds = profile.generate(600, 10);
    let cfg = GphConfig { strategy: PartitionStrategy::Original, ..GphConfig::new(36, 40) };
    let engine = Gph::build(ds.clone(), &cfg).unwrap();
    let t = 0.8f64;
    for qi in [0usize, 100, 311] {
        let q = ds.row(qi).to_vec();
        let w_q: u32 = q.iter().map(|w| w.count_ones()).sum();
        let tau = tanimoto_to_hamming_bound(w_q, t).min(40);
        let via_index: Vec<u32> = engine
            .search(&q, tau)
            .into_iter()
            .filter(|&id| tanimoto(ds.row(id as usize), &q) >= t)
            .collect();
        let brute: Vec<u32> =
            (0..ds.len()).filter(|&id| tanimoto(ds.row(id), &q) >= t).map(|id| id as u32).collect();
        assert_eq!(via_index, brute, "qi={qi}");
    }
}

/// Workload-level run mixing all engines: every exact engine agrees on
/// every query of a query set carved from the data.
#[test]
fn workload_level_agreement() {
    let profile = Profile::fasttext_like();
    let ds = profile.generate(1_200, 11);
    let qs = sample_queries(&ds, 8, 8, 12);
    let tau = 10u32;
    let scan = LinearScan::build(qs.data.clone());
    let mih = Mih::build(qs.data.clone(), 6).unwrap();
    let hm = HmSearch::build(qs.data.clone(), tau).unwrap();
    let pa = PartAlloc::build(qs.data.clone(), tau).unwrap();
    let mut cfg = GphConfig::new(5, tau as usize);
    cfg.allocator = AllocatorKind::Dp;
    cfg.workload = Some(WorkloadSpec::new(qs.workload.clone(), vec![5, tau]));
    let g = Gph::build(qs.data.clone(), &cfg).unwrap();
    for qi in 0..qs.queries.len() {
        let q = qs.queries.row(qi);
        let truth = scan.search(q, tau);
        assert_eq!(mih.search(q, tau), truth);
        assert_eq!(hm.search(q, tau), truth);
        assert_eq!(pa.search(q, tau), truth);
        assert_eq!(g.search(q, tau), truth);
    }
}

/// Paper Example 5, end to end through the public API: the DP allocation
/// over the published CN table reaches cost 55 with vector [2, 0, 2, 0].
#[test]
fn paper_example5_through_public_api() {
    use gph_suite::gph::cn::{CnEstimator, CnTable};
    use gph_suite::gph::{allocate_dp, ThresholdVector};
    struct PaperTable;
    impl CnEstimator for PaperTable {
        fn fill(&self, part: usize, _q: &[u64], tau: usize, out: &mut [f64]) {
            let rows: [[f64; 6]; 4] = [
                [0., 5., 10., 15., 50., 100.],
                [0., 10., 80., 90., 95., 100.],
                [0., 5., 15., 20., 70., 100.],
                [0., 10., 70., 80., 95., 100.],
            ];
            for e in 0..=tau + 1 {
                out[e] = rows[part][e.min(5)];
            }
        }
        fn size_bytes(&self) -> usize {
            0
        }
    }
    let cn = CnTable::compute(&PaperTable, &[vec![0], vec![0], vec![0], vec![0]], 7);
    let tv = allocate_dp(&cn, 7);
    assert_eq!(tv, ThresholdVector(vec![2, 0, 2, 0]));
    assert_eq!(cn.sum_for(&tv), 55.0);
}
